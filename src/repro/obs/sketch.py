"""Memory-bounded streaming sketches for long-horizon telemetry.

The exact collectors in :mod:`repro.simulator.stats` keep every sample
(`Tally` is an append-only numpy buffer), which is fine for one paper
figure but cannot survive the ROADMAP's long-horizon campaigns —
millions of requests per tenant, hours of simulated time.  This module
provides the bounded-memory counterparts the health subsystem is built
on:

* :class:`QuantileSketch` — a DDSketch-style log-bucketed quantile
  estimator: every recorded value lands in the bucket whose bounds are
  a factor ``gamma = (1+a)/(1-a)`` apart, so any reported quantile is
  within relative error ``a`` of the exact *nearest-rank* sample
  quantile, using O(log(max/min)/a) buckets regardless of sample count.
* :class:`EWMA` — exponentially weighted moving average, the per-server
  service-time tracker the fail-slow detector scores.
* :class:`RateTracker` — EWMA-smoothed rate of a monotonic counter
  (events/bytes per simulated second).
* :class:`WindowedSketch` — a ring of time-bucketed quantile sketches
  giving sliding-window quantiles and good/bad counts; the SLO engine's
  evaluation substrate (sketches merge by adding bucket counts).

Everything is driven by simulated-time arguments — nothing reads a host
clock — so health reports built on these are replay-deterministic.
"""

from __future__ import annotations

import math
from bisect import bisect_right

import numpy as np

__all__ = [
    "QuantileSketch",
    "EWMA",
    "RateTracker",
    "WindowedSketch",
    "SketchMismatchError",
]


class SketchMismatchError(ValueError):
    """Raised when two sketches with incompatible bucket geometry
    (``rel_err``/``gamma`` or ``min_value``) are merged.  Adding bucket
    counts across different geometries would silently corrupt every
    quantile, so the mismatch is a hard error."""


class QuantileSketch:
    """Streaming quantile estimator with a relative-error guarantee.

    Values are mapped to logarithmic buckets ``key = ceil(log_gamma x)``
    with ``gamma = (1 + rel_err) / (1 - rel_err)``; a bucket's midpoint
    estimate ``2 * gamma^key / (gamma + 1)`` is within ``rel_err`` of
    every value the bucket can hold.  Non-positive values (and values
    below ``min_value``) share a zero bucket.  When the bucket map
    exceeds ``max_bins`` the lowest keys collapse into one, preserving
    the guarantee for upper quantiles — the tail is what SLOs read.

    The interface mirrors :class:`~repro.simulator.stats.Tally`
    (``record`` / ``record_many`` / ``percentile`` / summary properties)
    so a :class:`~repro.simulator.stats.StatsRegistry` can hand out a
    sketch wherever a sample-hoarding tally used to sit.
    """

    __slots__ = (
        "name", "rel_err", "max_bins", "_gamma", "_log_gamma",
        "_min_value", "_min_key", "_bins", "_zero", "_n", "_sum",
        "_min", "_max", "collapsed",
    )

    def __init__(
        self,
        name: str = "",
        rel_err: float = 0.01,
        max_bins: int = 4096,
        min_value: float = 1e-9,
    ) -> None:
        if not (0.0 < rel_err < 1.0):
            raise ValueError(f"rel_err {rel_err} not in (0, 1)")
        if max_bins < 8:
            raise ValueError(f"max_bins {max_bins} too small")
        if min_value <= 0:
            raise ValueError(f"min_value {min_value} must be positive")
        self.name = name
        self.rel_err = rel_err
        self.max_bins = max_bins
        self._gamma = (1.0 + rel_err) / (1.0 - rel_err)
        self._log_gamma = math.log(self._gamma)
        self._min_value = min_value
        self._min_key = self._key(min_value)
        self._bins: dict[int, int] = {}
        self._zero = 0  # values <= min_value
        self._n = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: low buckets merged away under the max_bins bound
        self.collapsed = 0

    # -- recording ------------------------------------------------------

    def _key(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma)

    def record(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"sketch {self.name!r}: NaN sample")
        self._n += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= self._min_value:
            self._zero += 1
            return
        bins = self._bins
        key = math.ceil(math.log(value) / self._log_gamma)
        bins[key] = bins.get(key, 0) + 1
        if len(bins) > self.max_bins:
            self._collapse()

    def record_many(self, values) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        if not len(values):
            return
        if np.isnan(values).any():
            raise ValueError(f"sketch {self.name!r}: NaN sample")
        self._n += len(values)
        self._sum += float(values.sum())
        self._min = min(self._min, float(values.min()))
        self._max = max(self._max, float(values.max()))
        small = values <= self._min_value
        self._zero += int(small.sum())
        big = values[~small]
        if len(big):
            keys = np.ceil(np.log(big) / self._log_gamma).astype(np.int64)
            uniq, counts = np.unique(keys, return_counts=True)
            for key, count in zip(uniq.tolist(), counts.tolist()):
                self._bins[key] = self._bins.get(key, 0) + count
            if len(self._bins) > self.max_bins:
                self._collapse()

    def _collapse(self) -> None:
        """Merge the lowest buckets until the bound holds (DDSketch's
        collapsing policy: tails stay exact, the floor coarsens)."""
        keys = sorted(self._bins)
        while len(self._bins) > self.max_bins:
            lowest, second = keys[0], keys[1]
            self._bins[second] += self._bins.pop(lowest)
            keys.pop(0)
            self.collapsed += 1

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in (bucket maps simply add).

        Raises :class:`SketchMismatchError` unless both sketches share
        the same bucket geometry — same ``gamma`` (i.e. ``rel_err``) and
        same ``min_value`` zero-bucket floor.
        """
        if other._gamma != self._gamma:
            raise SketchMismatchError(
                f"cannot merge sketch {other.name!r} (rel_err="
                f"{other.rel_err}) into {self.name!r} (rel_err="
                f"{self.rel_err}): bucket geometries differ"
            )
        if other._min_value != self._min_value:
            raise SketchMismatchError(
                f"cannot merge sketch {other.name!r} (min_value="
                f"{other._min_value}) into {self.name!r} (min_value="
                f"{self._min_value}): zero-bucket floors differ"
            )
        self._n += other._n
        self._sum += other._sum
        self._zero += other._zero
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        for key, count in other._bins.items():
            self._bins[key] = self._bins.get(key, 0) + count
        if len(self._bins) > self.max_bins:
            self._collapse()

    def copy(self) -> "QuantileSketch":
        """An independent snapshot (bucket map duplicated)."""
        dup = self.__class__.__new__(self.__class__)
        dup.name = self.name
        dup.rel_err = self.rel_err
        dup.max_bins = self.max_bins
        dup._gamma = self._gamma
        dup._log_gamma = self._log_gamma
        dup._min_value = self._min_value
        dup._min_key = self._min_key
        dup._bins = dict(self._bins)
        dup._zero = self._zero
        dup._n = self._n
        dup._sum = self._sum
        dup._min = self._min
        dup._max = self._max
        dup.collapsed = self.collapsed
        return dup

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready snapshot: everything needed to reconstruct the
        sketch exactly (bucket map as sorted ``[key, count]`` pairs, so
        the encoding is deterministic and JSON-safe — dict int keys
        would stringify).  ``min``/``max`` serialize as ``None`` while
        empty (JSON has no ``inf``)."""
        return {
            "name": self.name,
            "rel_err": self.rel_err,
            "max_bins": self.max_bins,
            "min_value": self._min_value,
            "bins": [[k, self._bins[k]] for k in sorted(self._bins)],
            "zero": self._zero,
            "n": self._n,
            "sum": self._sum,
            "min": self._min if self._n else None,
            "max": self._max if self._n else None,
            "collapsed": self.collapsed,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "QuantileSketch":
        """Inverse of :meth:`to_dict`; round-trips exactly."""
        sketch = cls(
            state.get("name", ""),
            rel_err=state["rel_err"],
            max_bins=state["max_bins"],
            min_value=state.get("min_value", 1e-9),
        )
        sketch._bins = {int(k): int(c) for k, c in state["bins"]}
        sketch._zero = int(state["zero"])
        sketch._n = int(state["n"])
        sketch._sum = float(state["sum"])
        if sketch._n:
            sketch._min = float(state["min"])
            sketch._max = float(state["max"])
        sketch.collapsed = int(state.get("collapsed", 0))
        return sketch

    # -- views ----------------------------------------------------------

    @property
    def count(self) -> int:
        return self._n

    @property
    def nbins(self) -> int:
        return len(self._bins) + (1 if self._zero else 0)

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._n if self._n else math.nan

    @property
    def min(self) -> float:
        return self._min if self._n else math.nan

    @property
    def max(self) -> float:
        return self._max if self._n else math.nan

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100], matching
        :meth:`Tally.percentile`): the value of the sample at rank
        ``q/100 * (n-1)``, within ``rel_err`` relative error."""
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile {q} not in [0, 100]")
        if not self._n:
            return math.nan
        rank = q / 100.0 * (self._n - 1)
        cum = self._zero
        if rank < cum:
            # Sub-resolution bucket: values here are only known to within
            # min_value absolutely; report the smallest seen sample.
            return self._min
        for key in sorted(self._bins):
            cum += self._bins[key]
            if cum > rank:
                est = 2.0 * self._gamma ** key / (self._gamma + 1.0)
                # The true sample never leaves [min, max]; clamping can
                # only reduce the error.
                return min(max(est, self._min), self._max)
        return self._max  # pragma: no cover - cum always reaches n

    # Drop-in for Tally consumers.
    percentile = quantile

    def __repr__(self) -> str:
        if not self._n:
            return f"QuantileSketch({self.name}: empty)"
        return (
            f"QuantileSketch({self.name}: n={self._n}, bins={self.nbins}, "
            f"p50~{self.quantile(50):g}, p99~{self.quantile(99):g})"
        )


class EWMA:
    """Exponentially weighted moving average of a sampled quantity.

    ``alpha`` is the per-sample weight of the newest observation; the
    first sample initializes the average.  Deterministic and O(1) —
    the per-server service-time tracker the fail-slow detector reads.
    """

    __slots__ = ("alpha", "value", "count")

    def __init__(self, alpha: float = 0.1) -> None:
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha {alpha} not in (0, 1]")
        self.alpha = alpha
        self.value = math.nan
        self.count = 0

    def update(self, sample: float) -> float:
        self.count += 1
        if self.count == 1:
            self.value = float(sample)
        else:
            self.value += self.alpha * (float(sample) - self.value)
        return self.value

    def __repr__(self) -> str:
        return f"EWMA(alpha={self.alpha}, value={self.value:g}, n={self.count})"


class RateTracker:
    """EWMA-smoothed rate of a monotonic counter.

    Feed it ``observe(t_usec, cumulative)`` on each health tick; it
    differentiates against the previous observation and smooths the
    per-interval rate (units: counter units per simulated second).
    """

    __slots__ = ("_ewma", "_last_t", "_last_value")

    def __init__(self, alpha: float = 0.3) -> None:
        self._ewma = EWMA(alpha)
        self._last_t: float | None = None
        self._last_value = 0.0

    def observe(self, t_usec: float, cumulative: float) -> float:
        if self._last_t is None:
            self._last_t = t_usec
            self._last_value = cumulative
            return math.nan
        dt = t_usec - self._last_t
        if dt <= 0:
            return self._ewma.value
        rate = (cumulative - self._last_value) / dt * 1e6
        self._last_t = t_usec
        self._last_value = cumulative
        return self._ewma.update(rate)

    @property
    def rate(self) -> float:
        """Current smoothed rate (units/sec); NaN before two samples."""
        return self._ewma.value


def _count_over(sketch: QuantileSketch, threshold: float) -> int:
    """Samples strictly above ``threshold``, at bucket resolution: a
    bucket counts by its midpoint estimate, consistent with the sketch
    bound.  ``est > threshold`` is evaluated in the log domain — one
    log per call instead of one pow per bucket."""
    if threshold < 0.0:
        return sketch._n
    if threshold == 0.0:
        return sketch._n - sketch._zero
    kthr = (
        math.log(threshold * (sketch._gamma + 1.0) * 0.5)
        / sketch._log_gamma
    )
    return sum(c for k, c in sketch._bins.items() if k > kthr)


class WindowedSketch:
    """Sliding-window quantiles + good/bad counts over simulated time.

    The window ``[t - window_usec, t]`` is covered by ``nbuckets``
    rotating sub-buckets, each holding a small :class:`QuantileSketch`
    and a bad-event count; expired buckets are dropped as time advances,
    so memory stays bounded at ``nbuckets`` sketches.  Quantiles merge
    the live buckets (DDSketch merge = bucket-count addition), which
    keeps the same relative-error bound as a single sketch.
    """

    __slots__ = (
        "window_usec", "nbuckets", "rel_err", "max_bins",
        "_span", "_buckets", "_max_idx", "_lifetime",
        "_frozen_ids", "_frozen", "_frozen_bad",
        "_frozen_keys", "_frozen_suffix",
    )

    def __init__(
        self,
        window_usec: float,
        nbuckets: int = 8,
        rel_err: float = 0.01,
        max_bins: int = 512,
        keep_lifetime: bool = False,
    ) -> None:
        if window_usec <= 0:
            raise ValueError(f"bad window {window_usec}")
        if nbuckets < 1:
            raise ValueError(f"bad bucket count {nbuckets}")
        self.window_usec = window_usec
        self.nbuckets = nbuckets
        self.rel_err = rel_err
        self.max_bins = max_bins
        self._span = window_usec / nbuckets
        #: bucket index -> (sketch, bad count); index = floor(t / span)
        self._buckets: dict[int, tuple[QuantileSketch, int]] = {}
        self._max_idx = -(1 << 62)
        #: expired buckets folded here when ``keep_lifetime`` — the
        #: whole-run distribution without a second hot-path record
        self._lifetime = (
            QuantileSketch(rel_err=rel_err) if keep_lifetime else None
        )
        # summary() cache: merge of every live bucket except the active
        # one, plus its sorted keys and top-down suffix counts —
        # rebuilt only when the live bucket set rotates
        self._frozen_ids: "tuple[int, ...] | None" = None
        self._frozen: "QuantileSketch | None" = None
        self._frozen_bad = 0
        self._frozen_keys: list[int] = []
        self._frozen_suffix: list[int] = [0]

    def _advance(self, t_usec: float) -> None:
        floor_idx = int(t_usec // self._span) - self.nbuckets
        for idx in [i for i in self._buckets if i <= floor_idx]:
            sketch, _bad = self._buckets.pop(idx)
            if self._lifetime is not None and sketch.count:
                self._lifetime.merge(sketch)

    def _bucket(self, t_usec: float) -> tuple[QuantileSketch, int]:
        idx = int(t_usec // self._span)
        if idx < self._max_idx:
            # rewinding time mutates a bucket summary() may have frozen
            self._frozen_ids = None
        else:
            self._max_idx = idx
        entry = self._buckets.get(idx)
        if entry is None:
            # Purge only on rotation: the common record hits the
            # current bucket, and reads (`_live`) advance anyway.
            self._advance(t_usec)
            entry = (
                QuantileSketch(
                    rel_err=self.rel_err, max_bins=self.max_bins
                ),
                0,
            )
            self._buckets[idx] = entry
        return entry

    def record(self, t_usec: float, value: float, bad: bool = False) -> None:
        idx = int(t_usec // self._span)
        if idx < self._max_idx:
            # rewinding time mutates a bucket summary() may have frozen
            self._frozen_ids = None
        else:
            self._max_idx = idx
        entry = self._buckets.get(idx)
        if entry is None:
            self._advance(t_usec)
            entry = (
                QuantileSketch(
                    rel_err=self.rel_err, max_bins=self.max_bins
                ),
                0,
            )
            self._buckets[idx] = entry
        entry[0].record(value)
        if bad:
            self._buckets[idx] = (entry[0], entry[1] + 1)

    def record_bad(self, t_usec: float) -> None:
        """Count a bad event with no latency sample (timeout/error)."""
        sketch, nbad = self._bucket(t_usec)
        self._buckets[int(t_usec // self._span)] = (sketch, nbad + 1)

    # -- window views ---------------------------------------------------

    def _live(self, t_usec: float) -> list[tuple[QuantileSketch, int]]:
        self._advance(t_usec)
        return [self._buckets[i] for i in sorted(self._buckets)]

    def count(self, t_usec: float) -> int:
        return sum(s.count for s, _bad in self._live(t_usec))

    def bad_count(self, t_usec: float) -> int:
        return sum(bad for _s, bad in self._live(t_usec))

    def quantile(self, t_usec: float, q: float) -> float:
        live = [s for s, _bad in self._live(t_usec) if s.count]
        if not live:
            return math.nan
        merged = QuantileSketch(rel_err=self.rel_err, max_bins=self.max_bins)
        for sketch in live:
            merged.merge(sketch)
        return merged.quantile(q)

    def summary(
        self, t_usec: float, q: float, threshold: float
    ) -> tuple[int, int, float, float]:
        """One-pass window view: ``(count, bad, quantile, frac_over)``.

        The SLO tick reads all four every period.  Only the active
        bucket can have changed since the last call (records follow
        simulated time forward), so the merge of the older live
        buckets is cached and rebuilt only when the window rotates;
        each call pays one bucket-map copy plus one merge.
        """
        self._advance(t_usec)
        buckets = self._buckets
        cur = int(t_usec // self._span)
        frozen_ids = tuple(i for i in sorted(buckets) if i != cur)
        if frozen_ids != self._frozen_ids:
            frozen = QuantileSketch(
                rel_err=self.rel_err, max_bins=self.max_bins
            )
            fbad = 0
            for i in frozen_ids:
                sketch, b = buckets[i]
                if sketch.count:
                    frozen.merge(sketch)
                fbad += b
            fkeys = sorted(frozen._bins)
            suffix = [0] * (len(fkeys) + 1)
            for i in range(len(fkeys) - 1, -1, -1):
                suffix[i] = suffix[i + 1] + frozen._bins[fkeys[i]]
            self._frozen_ids = frozen_ids
            self._frozen = frozen
            self._frozen_bad = fbad
            self._frozen_keys = fkeys
            self._frozen_suffix = suffix
        frozen = self._frozen
        fbins = frozen._bins
        entry = buckets.get(cur)
        bad = self._frozen_bad
        if entry is None or not entry[0]._n:
            abins: dict[int, int] = {}
            n, zero, mn, mx = frozen._n, frozen._zero, frozen._min, frozen._max
            if entry is not None:
                bad += entry[1]
        else:
            active = entry[0]
            bad += entry[1]
            abins = active._bins
            n = frozen._n + active._n
            zero = frozen._zero + active._zero
            mn = min(frozen._min, active._min)
            mx = max(frozen._max, active._max)
        if not n:
            return 0, bad, math.nan, 0.0
        gamma = frozen._gamma
        fkeys = self._frozen_keys
        if threshold < 0.0:
            over = n
        elif threshold == 0.0:
            over = n - zero
        else:
            kthr = (
                math.log(threshold * (gamma + 1.0) * 0.5)
                / frozen._log_gamma
            )
            over = self._frozen_suffix[bisect_right(fkeys, kthr)]
            if abins:
                over += sum(c for k, c in abins.items() if k > kthr)
        # Nearest-rank quantile over the frozen/active key union,
        # walked from the top: for the tail quantiles the SLO reads,
        # this touches only the buckets holding the top 100-q percent.
        rank = q / 100.0 * (n - 1)
        quant = mn
        if rank >= zero:
            akeys = sorted(abins) if abins else []
            i = len(fkeys) - 1
            j = len(akeys) - 1
            above = 0
            while i >= 0 or j >= 0:
                if j < 0 or (i >= 0 and fkeys[i] >= akeys[j]):
                    k = fkeys[i]
                    c = fbins[k]
                    i -= 1
                    if j >= 0 and akeys[j] == k:
                        c += abins[k]
                        j -= 1
                else:
                    k = akeys[j]
                    c = abins[k]
                    j -= 1
                if rank >= n - above - c:
                    est = 2.0 * gamma ** k / (gamma + 1.0)
                    quant = min(max(est, mn), mx)
                    break
                above += c
        return n, bad, quant, over / n

    def frac_over(self, t_usec: float, threshold: float) -> float:
        """Fraction of windowed samples strictly above ``threshold``
        (bucket-resolution: a bucket straddling the threshold counts
        by its midpoint estimate, consistent with the sketch bound)."""
        total = over = 0
        for sketch, _bad in self._live(t_usec):
            total += sketch.count
            if sketch.count:
                over += _count_over(sketch, threshold)
        if not total:
            return 0.0
        return over / total

    def lifetime(self) -> QuantileSketch:
        """The whole-run distribution (requires ``keep_lifetime``):
        every expired bucket plus the live ones, merged on demand."""
        if self._lifetime is None:
            raise ValueError("WindowedSketch built without keep_lifetime")
        merged = self._lifetime.copy()
        for idx in sorted(self._buckets):
            sketch, _bad = self._buckets[idx]
            if sketch.count:
                merged.merge(sketch)
        return merged
