"""Fleet health: per-server/per-tenant SLOs and fail-slow detection.

The cluster layer (PR 5) already notices *dead* servers — the
:class:`~repro.cluster.registry.FleetRegistry` heartbeat flips liveness
when a daemon crashes.  This module adds the signals the ROADMAP's
straggler-mitigation and autoscaling work need *before* a server dies:

* a **per-tenant SLO engine** — declarative objectives (p99 block-request
  latency, attempt-level availability) evaluated online over a sliding
  window of :class:`~repro.obs.sketch.WindowedSketch` buckets, emitting
  ``obs.slo.*`` series, Perfetto counter tracks, and typed breach events
  with an error-budget **burn rate** (fraction of requests over the
  latency threshold divided by the budget the quantile allows: burn > 1
  means the budget is being spent faster than it accrues);
* a **fail-slow anomaly detector** — each server's service-time EWMA is
  scored against the fleet median with a MAD-based robust z-score; a
  server above ``anomaly_threshold`` for ``anomaly_consecutive`` ticks
  is flagged as limping.  Crash/flap (registry liveness), degrade, and
  slow all land in one per-server status: ``ok`` → ``slow`` → ``down``;
* a deterministic :meth:`HealthHub.report` — everything is driven by
  simulated time and recorded in fixed order, so the same seed + fault
  plan yields a byte-identical report (``repro health --replay-check``).

Metric taxonomy (see ``docs/OBSERVABILITY.md``):

* ``obs.slo.<tenant>.p99_usec`` / ``.burn_rate`` / ``.availability``
* ``obs.health.server.<name>.ewma_usec`` / ``.score`` / ``.status``
  (status encodes 0 = ok, 1 = slow, 2 = down)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator.stats import StatsRegistry
from .sketch import EWMA, QuantileSketch, WindowedSketch

__all__ = ["HealthConfig", "SLOBreach", "HealthHub", "STATUS_CODES"]

#: per-server status encoding used by the ``.status`` time series
STATUS_CODES = {"ok": 0, "slow": 1, "down": 2}


@dataclass(frozen=True)
class HealthConfig:
    """Objectives and detector tuning for one fleet."""

    #: SLO/detector evaluation period (simulated µs).  Finer than the
    #: window rotation on purpose: the fail-slow EWMA spikes at
    #: millisecond granularity, and the windowed SLO view amortizes
    #: sub-rotation ticks through its frozen-bucket merge cache.
    tick_usec: float = 1_000.0
    #: sliding window the SLOs are judged over
    window_usec: float = 50_000.0
    #: window sub-buckets (sketches rotate at window/nbuckets)
    nbuckets: int = 10
    #: sketch relative-error bound (documented in OBSERVABILITY.md)
    rel_err: float = 0.01
    #: latency SLO: this quantile of block-request latency...
    slo_quantile: float = 99.0
    #: ...must stay under this many µs (calibrated against the repo's
    #: quicksort cluster runs: healthy windowed p99 stays under ~700 µs,
    #: a degraded link pushes it past 2000)
    slo_latency_usec: float = 1_500.0
    #: availability SLO: fraction of attempts acknowledged OK
    slo_availability: float = 0.999
    #: don't judge a window with fewer samples than this
    min_samples: int = 20
    #: per-server service-time EWMA weight
    ewma_alpha: float = 0.2
    #: robust z-score above which a server counts as anomalous (with the
    #: 0.5 relative scale floor this reads "EWMA at least ~3x the fleet
    #: median"; healthy cluster runs stay under ~2)
    anomaly_threshold: float = 4.0
    #: consecutive anomalous ticks before the fail-slow flag raises
    anomaly_consecutive: int = 3
    #: z-score scale floors: fraction of the fleet median, absolute µs.
    #: Small fleets serving phase-shifted workloads see healthy EWMA
    #: spreads of ~2x the median (MAD alone would flag them); the 0.5
    #: floor means only a server several multiples above the fleet
    #: median can score past the threshold.
    mad_rel_floor: float = 0.5
    mad_abs_floor_usec: float = 5.0

    def __post_init__(self) -> None:
        if self.tick_usec <= 0:
            raise ValueError(f"bad tick_usec {self.tick_usec}")
        if self.window_usec < self.tick_usec:
            raise ValueError("window must cover at least one tick")
        if not (0.0 < self.slo_quantile < 100.0):
            raise ValueError(f"bad slo_quantile {self.slo_quantile}")
        if self.slo_latency_usec <= 0:
            raise ValueError(f"bad slo_latency_usec {self.slo_latency_usec}")
        if not (0.0 < self.slo_availability <= 1.0):
            raise ValueError(f"bad slo_availability {self.slo_availability}")
        if self.anomaly_threshold <= 0:
            raise ValueError(f"bad anomaly_threshold {self.anomaly_threshold}")
        if self.anomaly_consecutive < 1:
            raise ValueError(f"bad anomaly_consecutive {self.anomaly_consecutive}")


@dataclass(frozen=True)
class SLOBreach:
    """One typed breach-edge event (also emitted as a trace instant)."""

    t_usec: float
    tenant: str
    slo: str  # "latency_p99" | "availability"
    edge: str  # "start" | "end"
    observed: float
    threshold: float
    burn_rate: float

    def to_dict(self) -> dict:
        return {
            "t_usec": self.t_usec,
            "tenant": self.tenant,
            "slo": self.slo,
            "edge": self.edge,
            "observed": self.observed,
            "threshold": self.threshold,
            "burn_rate": self.burn_rate,
        }


class _ServerHealth:
    """Detector state for one memory server."""

    __slots__ = (
        "name", "ewma", "service_sketch", "samples", "streak",
        "flagged_at", "peak_score", "status", "alive",
    )

    def __init__(self, name: str, alpha: float, rel_err: float) -> None:
        self.name = name
        self.ewma = EWMA(alpha)
        #: cumulative service-time distribution (whole run)
        self.service_sketch = QuantileSketch(
            f"health.{name}.rtt", rel_err=rel_err
        )
        self.samples = 0
        self.streak = 0
        self.flagged_at: float | None = None
        self.peak_score = 0.0
        self.status = "ok"
        self.alive = True


class _TenantHealth:
    """SLO state for one tenant."""

    __slots__ = (
        "name", "window", "bad_total", "good_total",
        "lat_breached", "avail_breached", "peak_burn",
    )

    def __init__(self, name: str, cfg: HealthConfig) -> None:
        self.name = name
        #: sliding SLO window; expired buckets fold into a lifetime
        #: sketch, so the whole-run distribution costs no second
        #: record on the request path
        self.window = WindowedSketch(
            cfg.window_usec, nbuckets=cfg.nbuckets, rel_err=cfg.rel_err,
            keep_lifetime=True,
        )
        self.bad_total = 0
        self.good_total = 0
        self.lat_breached = False
        self.avail_breached = False
        self.peak_burn = 0.0


class HealthHub:
    """Always-on fleet health model for one cluster run.

    Feed it from the data path (client RTT/latency/error hooks and the
    registry's liveness edges), :meth:`start` it alongside the
    heartbeat, and read :meth:`report` after the run.  All inputs are
    simulated-time quantities, so the output is replay-deterministic.
    """

    def __init__(
        self,
        sim,
        server_names: list[str],
        tenant_names: list[str],
        cfg: HealthConfig | None = None,
        stats: StatsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg if cfg is not None else HealthConfig()
        self.stats = stats if stats is not None else StatsRegistry()
        self.servers = [
            _ServerHealth(name, self.cfg.ewma_alpha, self.cfg.rel_err)
            for name in server_names
        ]
        self.tenants = {
            name: _TenantHealth(name, self.cfg) for name in tenant_names
        }
        self.breaches: list[SLOBreach] = []
        #: (t_usec, server, from_status, to_status) edges, in tick order
        self.status_timeline: list[tuple[float, str, str, str]] = []
        #: (t_usec, tenant, burn_rate) per tick while burn > 0
        self.burn_timeline: list[tuple[float, str, float]] = []
        self.ticks = 0
        self._started = False
        c = self.cfg
        #: error budget per window: the latency quantile leaves this
        #: fraction of requests allowed over the threshold
        self._budget = 1.0 - c.slo_quantile / 100.0
        # obs.slo.* / obs.health.* series, registered eagerly so empty
        # runs still expose the taxonomy.
        self._s_srv = {
            s.name: {
                "ewma": self.stats.timeseries(
                    f"obs.health.server.{s.name}.ewma_usec"
                ),
                "score": self.stats.timeseries(
                    f"obs.health.server.{s.name}.score"
                ),
                "status": self.stats.timeseries(
                    f"obs.health.server.{s.name}.status"
                ),
            }
            for s in self.servers
        }
        self._s_ten = {
            name: {
                "p99": self.stats.timeseries(f"obs.slo.{name}.p99_usec"),
                "burn": self.stats.timeseries(f"obs.slo.{name}.burn_rate"),
                "avail": self.stats.timeseries(
                    f"obs.slo.{name}.availability"
                ),
            }
            for name in tenant_names
        }

    # -- data-path hooks (O(1), always on) ------------------------------

    def record_server_rtt(self, server: int, rtt_usec: float) -> None:
        """One acknowledged physical request's round trip on ``server``."""
        s = self.servers[server]
        s.ewma.update(rtt_usec)
        s.service_sketch.record(rtt_usec)
        s.samples += 1

    def record_request(self, tenant: str, latency_usec: float) -> None:
        """One completed block request for ``tenant``."""
        t = self.tenants.get(tenant)
        if t is None:
            return
        t.window.record(self.sim.now, latency_usec)
        t.good_total += 1

    def record_error(self, tenant: str | None, server: int | None) -> None:
        """One failed attempt (nack/error/timeout) — burns availability."""
        if tenant is not None:
            t = self.tenants.get(tenant)
            if t is not None:
                t.window.record_bad(self.sim.now)
                t.bad_total += 1

    def set_server_alive(self, server: int, alive: bool) -> None:
        """Liveness edge from the registry heartbeat.

        A dead→alive transition resets the detector state: the restarted
        daemon's service profile owes nothing to its pre-crash samples —
        a stale high EWMA would instantly re-flag (or mask) it.  The
        lifetime sketch and sticky ``flagged_at``/``peak_score`` history
        survive; the online detector restarts cold.
        """
        s = self.servers[server]
        if alive and not s.alive:
            s.ewma = EWMA(self.cfg.ewma_alpha)
            s.samples = 0
            s.streak = 0
        s.alive = alive

    def server_is_slow(self, server: int) -> bool:
        """Current fail-slow verdict for quarantine decisions.

        True while the detector's status is ``slow``; clears as soon as
        the score recovers (quarantine lift) — unlike ``flagged_at``,
        which is sticky history.
        """
        s = self.servers[server]
        return s.alive and s.status == "slow"

    # -- evaluation -----------------------------------------------------

    def start(self) -> None:
        """Spawn the periodic evaluator (idempotent)."""
        if not self._started:
            self._started = True
            self.sim.spawn(self._ticker(), name="obs.health.tick")

    def _ticker(self):
        while True:
            yield self.sim.timeout(self.cfg.tick_usec)
            self.tick()

    def tick(self) -> None:
        """Evaluate every objective and detector once (also callable
        directly from tests)."""
        self.ticks += 1
        now = self.sim.now
        self._tick_servers(now)
        for name in sorted(self.tenants):
            self._tick_tenant(now, self.tenants[name])

    def _tick_servers(self, now: float) -> None:
        cfg = self.cfg
        trace = self.sim.trace
        scored = [
            s for s in self.servers
            if s.alive and s.samples >= cfg.min_samples
        ]
        values = sorted(s.ewma.value for s in scored)
        median = _median(values)
        if values:
            mad = _median(sorted(abs(v - median) for v in values))
            scale = max(
                1.4826 * mad,
                cfg.mad_rel_floor * median,
                cfg.mad_abs_floor_usec,
            )
        else:
            scale = None
        for i, s in enumerate(self.servers):
            score = 0.0
            if not s.alive:
                status = "down"
                s.streak = 0
            else:
                if s in scored and scale:
                    score = (s.ewma.value - median) / scale
                    s.peak_score = max(s.peak_score, score)
                if score > cfg.anomaly_threshold:
                    s.streak += 1
                    if (
                        s.streak >= cfg.anomaly_consecutive
                        and s.flagged_at is None
                    ):
                        s.flagged_at = now
                        trace.instant(
                            "health", "detector", "fail_slow",
                            server=s.name, score=score,
                            ewma_usec=s.ewma.value,
                        )
                else:
                    s.streak = 0
                status = (
                    "slow"
                    if s.streak >= cfg.anomaly_consecutive
                    or (s.flagged_at is not None and score > cfg.anomaly_threshold)
                    else "ok"
                )
            if status != s.status:
                self.status_timeline.append((now, s.name, s.status, status))
                s.status = status
            series = self._s_srv[s.name]
            ewma = s.ewma.value if s.samples else 0.0
            series["ewma"].record(now, ewma)
            series["score"].record(now, score)
            series["status"].record(now, float(STATUS_CODES[status]))
            if trace.enabled:
                trace.counter(
                    "health", f"server.{s.name}",
                    ewma_usec=ewma, score=score,
                    status=float(STATUS_CODES[status]),
                )

    def _tick_tenant(self, now: float, t: _TenantHealth) -> None:
        cfg = self.cfg
        trace = self.sim.trace
        n, bad, p99, frac_over = t.window.summary(
            now, cfg.slo_quantile, cfg.slo_latency_usec
        )
        total = n + bad
        if total < cfg.min_samples:
            return
        burn = frac_over / self._budget
        t.peak_burn = max(t.peak_burn, burn)
        avail = 1.0 - bad / total
        series = self._s_ten[t.name]
        series["p99"].record(now, p99 if n else 0.0)
        series["burn"].record(now, burn)
        series["avail"].record(now, avail)
        if burn > 0.0:
            self.burn_timeline.append((now, t.name, burn))
        if trace.enabled:
            trace.counter(
                "health", f"slo.{t.name}",
                p99_usec=p99 if n else 0.0, burn_rate=burn,
                availability=avail,
            )
        t.lat_breached = self._edge(
            now, t, "latency_p99", t.lat_breached,
            active=burn > 1.0, observed=p99 if n else 0.0,
            threshold=cfg.slo_latency_usec, burn=burn,
        )
        t.avail_breached = self._edge(
            now, t, "availability", t.avail_breached,
            active=avail < cfg.slo_availability, observed=avail,
            threshold=cfg.slo_availability, burn=burn,
        )

    def _edge(
        self,
        now: float,
        t: _TenantHealth,
        slo: str,
        was_active: bool,
        active: bool,
        observed: float,
        threshold: float,
        burn: float,
    ) -> bool:
        if active == was_active:
            return was_active
        breach = SLOBreach(
            t_usec=now, tenant=t.name, slo=slo,
            edge="start" if active else "end",
            observed=observed, threshold=threshold, burn_rate=burn,
        )
        self.breaches.append(breach)
        self.sim.trace.instant(
            "health", "slo", f"breach_{breach.edge}",
            tenant=t.name, slo=slo, observed=observed,
            threshold=threshold, burn_rate=burn,
        )
        return active

    # -- reporting ------------------------------------------------------

    @property
    def flagged_servers(self) -> list[str]:
        """Servers the fail-slow detector has flagged, in fleet order."""
        return [s.name for s in self.servers if s.flagged_at is not None]

    def breached_tenants(self) -> list[str]:
        """Tenants with at least one breach-start event, sorted."""
        return sorted(
            {b.tenant for b in self.breaches if b.edge == "start"}
        )

    def report(self) -> dict:
        """The full health model as a plain, deterministic dict."""
        cfg = self.cfg
        servers = {}
        for s in self.servers:
            servers[s.name] = {
                "status": s.status,
                "alive": s.alive,
                "samples": s.samples,
                "ewma_usec": round(s.ewma.value, 3) if s.samples else None,
                "p99_usec": (
                    round(s.service_sketch.quantile(99), 3)
                    if s.samples
                    else None
                ),
                "peak_score": round(s.peak_score, 3),
                "flagged": s.flagged_at is not None,
                "flagged_at_usec": s.flagged_at,
            }
        tenants = {}
        for name in sorted(self.tenants):
            t = self.tenants[name]
            total = t.good_total + t.bad_total
            life = t.window.lifetime() if t.good_total else None
            starts = [
                b for b in self.breaches
                if b.tenant == name and b.edge == "start"
            ]
            tenants[name] = {
                "requests": t.good_total,
                "failed_attempts": t.bad_total,
                "availability": (
                    round(1.0 - t.bad_total / total, 6) if total else None
                ),
                "p50_usec": (
                    round(life.quantile(50), 3) if life else None
                ),
                "p99_usec": (
                    round(life.quantile(99), 3) if life else None
                ),
                "peak_burn_rate": round(t.peak_burn, 3),
                "breaches": len(starts),
                "slo_met": not starts and not t.avail_breached
                and not t.lat_breached,
            }
        return {
            "slo": {
                "latency_quantile": cfg.slo_quantile,
                "latency_threshold_usec": cfg.slo_latency_usec,
                "availability_target": cfg.slo_availability,
                "window_usec": cfg.window_usec,
                "sketch_rel_err": cfg.rel_err,
            },
            "ticks": self.ticks,
            "servers": servers,
            "tenants": tenants,
            "flagged_servers": self.flagged_servers,
            "breached_tenants": self.breached_tenants(),
            "breach_timeline": [b.to_dict() for b in self.breaches],
            "burn_timeline": [
                {"t_usec": t_usec, "tenant": tenant, "burn_rate": round(b, 4)}
                for t_usec, tenant, b in self.burn_timeline
            ],
            "status_timeline": [
                {"t_usec": t_usec, "server": srv, "from": a, "to": b}
                for t_usec, srv, a, b in self.status_timeline
            ],
        }


def _median(sorted_values: list[float]) -> float:
    n = len(sorted_values)
    if not n:
        return 0.0
    mid = n // 2
    if n % 2:
        return sorted_values[mid]
    return 0.5 * (sorted_values[mid - 1] + sorted_values[mid])
