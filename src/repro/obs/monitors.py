"""Always-on runtime invariant monitors.

Components on the swap request path report conservation and sanity
checks here as the simulation runs: credit counts never negative,
registration-pool bytes conserved, frame accounting balanced, request
queues drained at teardown.  Violations are recorded with the simulated
timestamp, mirrored into the trace (when tracing is enabled) as
zero-duration ``invariant`` spans so they show up in Perfetto next to
the work that broke them, and can be promoted to hard errors by setting
``strict`` (the default in tests via scenario teardown audits).

This module is imported by ``simulator.core`` so it must stay free of
``repro.simulator`` imports; ``InvariantViolation`` therefore derives
from ``AssertionError`` rather than ``SimulationError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["InvariantViolation", "MonitorHub", "Violation"]


class InvariantViolation(AssertionError):
    """A runtime invariant monitor fired while ``strict`` was set."""


@dataclass(frozen=True)
class Violation:
    """One invariant failure observed at simulated time ``t``."""

    t: float
    monitor: str
    component: str
    message: str
    details: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "t_usec": self.t,
            "monitor": self.monitor,
            "component": self.component,
            "message": self.message,
            **self.details,
        }

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        extra = "".join(f" {k}={v}" for k, v in self.details.items())
        return (f"[{self.t:.3f}us] {self.monitor} @ {self.component}: "
                f"{self.message}{extra}")


class MonitorHub:
    """Collects invariant checks from every layer of one simulation.

    Attached to each ``Simulator`` as ``sim.monitors``.  Checks are
    cheap enough to leave on unconditionally; a firing monitor records
    a :class:`Violation` (and a trace span when tracing) and, when
    ``strict`` is set, raises :class:`InvariantViolation` at the point
    of damage rather than letting the simulation run on corrupted
    state.
    """

    __slots__ = ("sim", "strict", "violations", "watermarks")

    def __init__(self, sim: Any, strict: bool = False) -> None:
        self.sim = sim
        self.strict = strict
        self.violations: list[Violation] = []
        self.watermarks: dict[str, float] = {}

    @property
    def ok(self) -> bool:
        return not self.violations

    def violation(self, monitor: str, component: str, message: str,
                  **details: Any) -> Violation:
        """Record an invariant failure at the current simulated time."""
        v = Violation(self.sim.now, monitor, component, message, details)
        self.violations.append(v)
        trace = self.sim.trace
        if trace.enabled:
            trace.complete(
                component, "monitors", monitor, "invariant",
                self.sim.now, self.sim.now, message=message, **details,
            )
        if self.strict:
            raise InvariantViolation(str(v))
        return v

    def check(self, ok: bool, monitor: str, component: str, message: str,
              **details: Any) -> bool:
        """Record a violation unless ``ok``; returns ``ok`` unchanged."""
        if not ok:
            self.violation(monitor, component, message, **details)
        return ok

    def watermark(self, key: str, value: float) -> None:
        """Track the high-water mark of a monitored quantity."""
        prev = self.watermarks.get(key)
        if prev is None or value > prev:
            self.watermarks[key] = value

    def summary(self) -> list[dict[str, Any]]:
        """Picklable dump of every violation (for ScenarioResult)."""
        return [v.as_dict() for v in self.violations]
