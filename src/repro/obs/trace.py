"""Cross-layer request tracing over the simulated clock.

Every layer a swap request crosses — VM fault handler, block layer,
HPBD/NBD driver, fabric ports, memory server — records :class:`Span`
objects into one shared :class:`TraceRecorder`, tagged with the request
identity (``req_id``, ``op``, ``sector``, ``nbytes``).  The result is
the measured counterpart of the paper's §6.2 decomposition: instead of
inferring the network share of swap overhead from two run times
(`repro.analysis.amdahl`), the trace *shows* where each request spent
its time.

Design rules:

* **Simulated time** — timestamps come from a ``clock`` callable
  (``sim.now``); nothing here reads the host clock, so traces are
  deterministic and replayable.
* **Near-zero cost when disabled** — components reach the recorder via
  ``sim.trace`` which defaults to :data:`NULL_TRACE`; hot paths guard
  with ``if trace.enabled:`` so a disabled run pays one attribute load
  and a branch per site.
* **Stdlib only** — this module imports nothing from the rest of the
  package, so the simulator core can depend on it without cycles.

Two exporters are provided: Chrome trace-event JSON (open it in
Perfetto / ``chrome://tracing``) and a flat CSV for pandas/awk.  Span
``cat`` values form the stage taxonomy documented in
``docs/OBSERVABILITY.md`` and aggregated by
:mod:`repro.analysis.breakdown`.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Callable
from typing import Any, TextIO

__all__ = [
    "Span",
    "TraceRecorder",
    "NullTraceRecorder",
    "NULL_TRACE",
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "spans_to_csv",
    "spans_from_csv",
]


class Span:
    """One timed interval on a named track.

    ``component`` maps to a Chrome trace *process* (pid) and ``track``
    to a *thread* (tid); ``cat`` is the stage taxonomy bucket the
    breakdown analysis aggregates by; ``args`` carries request identity
    (``req_id``, ``op``, ``sector``, ``nbytes``, ...).
    """

    __slots__ = ("component", "track", "name", "cat", "start", "dur", "args")

    def __init__(
        self,
        component: str,
        track: str,
        name: str,
        cat: str,
        start: float,
        dur: float,
        args: dict[str, Any] | None = None,
    ) -> None:
        self.component = component
        self.track = track
        self.name = name
        self.cat = cat
        self.start = start
        self.dur = dur
        self.args = args

    @property
    def end(self) -> float:
        return self.start + self.dur

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.cat}:{self.name} [{self.start:.1f}"
            f"+{self.dur:.1f}µs] {self.component}/{self.track})"
        )


class _SpanHandle:
    """An open span; close it with :meth:`end` (or as a context manager,
    which works across ``yield`` inside simulation processes)."""

    __slots__ = ("_rec", "component", "track", "name", "cat", "start", "args")

    def __init__(
        self,
        rec: "TraceRecorder",
        component: str,
        track: str,
        name: str,
        cat: str,
        start: float,
        args: dict[str, Any] | None,
    ) -> None:
        self._rec = rec
        self.component = component
        self.track = track
        self.name = name
        self.cat = cat
        self.start = start
        self.args = args

    def set(self, **kwargs: Any) -> "_SpanHandle":
        """Attach/extend args after opening (e.g. once a size is known)."""
        if self.args is None:
            self.args = kwargs
        else:
            self.args.update(kwargs)
        return self

    def end(self, **kwargs: Any) -> None:
        if kwargs:
            self.set(**kwargs)
        rec = self._rec
        now = rec._clock()
        rec.spans.append(
            Span(
                self.component,
                self.track,
                self.name,
                self.cat,
                self.start,
                now - self.start,
                self.args,
            )
        )

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end()
        return False


class _NullHandle:
    """Shared no-op stand-in returned by a disabled recorder."""

    __slots__ = ()

    def set(self, **kwargs: Any) -> "_NullHandle":
        return self

    def end(self, **kwargs: Any) -> None:
        pass

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class TraceRecorder:
    """Collects spans, instants and counter samples for one simulation."""

    enabled = True

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.spans: list[Span] = []
        #: (component, track, name, t, args)
        self.instants: list[tuple[str, str, str, float, dict | None]] = []
        #: (component, name, t, {series: value})
        self.counters: list[tuple[str, str, float, dict[str, float]]] = []

    # -- recording -------------------------------------------------------

    def span(
        self,
        component: str,
        track: str,
        name: str,
        cat: str,
        **args: Any,
    ) -> _SpanHandle:
        """Open a span starting now; call ``.end()`` (or use ``with``)."""
        return _SpanHandle(
            self, component, track, name, cat, self._clock(), args or None
        )

    def complete(
        self,
        component: str,
        track: str,
        name: str,
        cat: str,
        start: float,
        end: float,
        **args: Any,
    ) -> None:
        """Record a span retrospectively from explicit timestamps —
        the shape callback-driven layers (block completion) need."""
        self.spans.append(
            Span(component, track, name, cat, start, end - start, args or None)
        )

    def instant(
        self, component: str, track: str, name: str, **args: Any
    ) -> None:
        self.instants.append(
            (component, track, name, self._clock(), args or None)
        )

    def counter(self, component: str, name: str, **values: float) -> None:
        """One sample of one or more co-plotted counter series."""
        self.counters.append((component, name, self._clock(), dict(values)))

    # -- views -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def stage_usec(self) -> dict[str, float]:
        """Total span time per ``cat`` (the §6.2 stage totals)."""
        out: dict[str, float] = {}
        for span in self.spans:
            out[span.cat] = out.get(span.cat, 0.0) + span.dur
        return out


class NullTraceRecorder:
    """Disabled recorder: every operation is a no-op.

    A single shared instance (:data:`NULL_TRACE`) is the default value
    of ``Simulator.trace``; hot paths check :attr:`enabled` before
    building span arguments.
    """

    enabled = False
    spans: list[Span] = []
    instants: list = []
    counters: list = []

    def span(self, *a: Any, **kw: Any) -> _NullHandle:
        return _NULL_HANDLE

    def complete(self, *a: Any, **kw: Any) -> None:
        pass

    def instant(self, *a: Any, **kw: Any) -> None:
        pass

    def counter(self, *a: Any, **kw: Any) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def stage_usec(self) -> dict[str, float]:
        return {}


NULL_TRACE = NullTraceRecorder()


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def chrome_trace(rec: TraceRecorder) -> dict[str, Any]:
    """Render the recorder as a Chrome trace-event object.

    Components become processes, tracks become threads; spans are
    complete ("X") events, instants "i", counter samples "C".  ``ts`` is
    microseconds — the simulator's native unit — so Perfetto displays
    simulated time directly.
    """
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    events: list[dict[str, Any]] = []
    meta: list[dict[str, Any]] = []

    def pid_of(component: str) -> int:
        pid = pids.get(component)
        if pid is None:
            pid = pids[component] = len(pids) + 1
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": component},
                }
            )
        return pid

    def tid_of(component: str, track: str) -> int:
        key = (component, track)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid_of(component),
                    "tid": tid,
                    "args": {"name": track or component},
                }
            )
        return tid

    for span in rec.spans:
        evt: dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.start,
            "dur": span.dur,
            "pid": pid_of(span.component),
            "tid": tid_of(span.component, span.track),
        }
        if span.args:
            evt["args"] = span.args
        events.append(evt)
    for component, track, name, t, args in rec.instants:
        evt = {
            "name": name,
            "ph": "i",
            "s": "t",
            "ts": t,
            "pid": pid_of(component),
            "tid": tid_of(component, track),
        }
        if args:
            evt["args"] = args
        events.append(evt)
    for component, name, t, values in rec.counters:
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": t,
                "pid": pid_of(component),
                "tid": 0,
                "args": values,
            }
        )
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "unit": "microseconds"},
    }


def chrome_trace_json(rec: TraceRecorder, indent: int | None = None) -> str:
    return json.dumps(chrome_trace(rec), indent=indent)


def write_chrome_trace(rec: TraceRecorder, path_or_file: "str | TextIO") -> None:
    """Write the Chrome trace JSON to a path or open text file."""
    if hasattr(path_or_file, "write"):
        json.dump(chrome_trace(rec), path_or_file)
    else:
        with open(path_or_file, "w") as fh:
            json.dump(chrome_trace(rec), fh)


#: CSV columns: fixed trace geometry, the common request-identity args
#: promoted to their own columns, and a JSON ``args`` column carrying
#: everything else so the export is lossless (see spans_from_csv).
_CSV_FIELDS = (
    "start_usec",
    "dur_usec",
    "component",
    "track",
    "cat",
    "name",
    "req_id",
    "op",
    "sector",
    "nbytes",
    "args",
)

#: args promoted to dedicated columns, with parsers for the round trip.
_CSV_PROMOTED = (("req_id", int), ("op", str), ("sector", int),
                 ("nbytes", int))


def spans_to_csv(rec: TraceRecorder) -> str:
    """Flat CSV of all spans (one row per span, stable column set).

    Uses real CSV quoting, so free-form ``args`` values (commas, quotes,
    newlines) survive; :func:`spans_from_csv` inverts it.
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(_CSV_FIELDS)
    for span in rec.spans:
        args = span.args or {}
        extra = {k: v for k, v in args.items()
                 if k not in ("req_id", "op", "sector", "nbytes")}
        writer.writerow((
            f"{span.start:.3f}",
            f"{span.dur:.3f}",
            span.component,
            span.track,
            span.cat,
            span.name,
            str(args.get("req_id", "")),
            str(args.get("op", "")),
            str(args.get("sector", "")),
            str(args.get("nbytes", "")),
            json.dumps(extra, sort_keys=True) if extra else "",
        ))
    return buf.getvalue()


def spans_from_csv(text: str) -> list[Span]:
    """Parse :func:`spans_to_csv` output back into :class:`Span` objects.

    Timestamps round-trip at the export precision (1 ns); promoted
    columns are re-typed (``req_id``/``sector``/``nbytes`` as int) and
    merged with the JSON ``args`` column.
    """
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header is None or tuple(header) != _CSV_FIELDS:
        raise ValueError(f"unrecognized span CSV header: {header!r}")
    spans: list[Span] = []
    for row in reader:
        if not row:
            continue
        start, dur, component, track, cat, name = row[:6]
        extra = row[10]
        args: dict[str, Any] = json.loads(extra) if extra else {}
        for (key, parse), cell in zip(_CSV_PROMOTED, row[6:10]):
            if cell != "":
                args[key] = parse(cell)
        spans.append(
            Span(component, track, name, cat, float(start), float(dur),
                 args or None)
        )
    return spans
