"""Observability: cross-layer request tracing + periodic metrics.

* :mod:`repro.obs.trace` — :class:`Span`/:class:`TraceRecorder` over the
  simulated clock, with Chrome trace-event (Perfetto) and CSV exporters.
  Every simulator carries a recorder at ``sim.trace`` (disabled by
  default, near-zero cost); ``run_scenario(cfg, trace=True)`` turns it
  on for a run.
* :mod:`repro.obs.metrics` — :class:`MetricsHub`, a simulated-time
  ``vmstat`` sampler feeding :class:`~repro.simulator.stats.TimeSeries`
  collectors and trace counter tracks, plus ``watch()`` gauges for
  utilization/queue-depth timelines.
* :mod:`repro.obs.monitors` — :class:`MonitorHub`, always-on runtime
  invariant monitors attached to every simulator at ``sim.monitors``.

``MetricsHub`` is re-exported lazily: the simulator core imports
``repro.obs.trace`` while loading, so this ``__init__`` must not pull in
the kernel layer eagerly.
"""

from .monitors import InvariantViolation, MonitorHub, Violation
from .trace import (
    NULL_TRACE,
    NullTraceRecorder,
    Span,
    TraceRecorder,
    chrome_trace,
    chrome_trace_json,
    spans_from_csv,
    spans_to_csv,
    write_chrome_trace,
)

__all__ = [
    "Span",
    "TraceRecorder",
    "NullTraceRecorder",
    "NULL_TRACE",
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "spans_to_csv",
    "spans_from_csv",
    "MetricsHub",
    "MonitorHub",
    "InvariantViolation",
    "Violation",
    "QuantileSketch",
    "EWMA",
    "RateTracker",
    "WindowedSketch",
    "HealthConfig",
    "HealthHub",
    "SLOBreach",
    "SketchMismatchError",
    "CampaignStore",
    "RunRecord",
    "record_from_result",
    "run_campaign",
    "reseed_config",
    "git_provenance",
]

#: lazily re-exported names -> defining submodule (the simulator core
#: imports repro.obs.trace while loading, so nothing here may pull in
#: heavier layers eagerly)
_LAZY = {
    "MetricsHub": "metrics",
    "QuantileSketch": "sketch",
    "EWMA": "sketch",
    "RateTracker": "sketch",
    "WindowedSketch": "sketch",
    "HealthConfig": "health",
    "HealthHub": "health",
    "SLOBreach": "health",
    "SketchMismatchError": "sketch",
    "CampaignStore": "campaign",
    "RunRecord": "campaign",
    "record_from_result": "campaign",
    "run_campaign": "campaign",
    "reseed_config": "campaign",
    "git_provenance": "campaign",
}


def __getattr__(name: str):
    modname = _LAZY.get(name)
    if modname is not None:
        import importlib

        mod = importlib.import_module(f".{modname}", __name__)
        return getattr(mod, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
