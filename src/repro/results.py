"""Run results: what an experiment hands back for tables and analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .simulator import StatsRegistry
from .units import SEC

if TYPE_CHECKING:  # pragma: no cover
    from .obs.trace import TraceRecorder

__all__ = ["InstanceResult", "ScenarioResult"]


@dataclass
class InstanceResult:
    """One workload instance's outcome."""

    workload: str
    elapsed_usec: float
    major_faults: int
    minor_faults: int
    stall_usec: float

    @property
    def elapsed_sec(self) -> float:
        return self.elapsed_usec / SEC


@dataclass
class ScenarioResult:
    """One scenario's outcome (all instances + device/VM accounting)."""

    label: str
    instances: list[InstanceResult]
    elapsed_usec: float  # wall time until the last instance finished
    swapout_pages: int
    swapin_pages: int
    #: dispatched request sizes, bytes (empty for the local-memory case)
    read_request_bytes: np.ndarray
    write_request_bytes: np.ndarray
    #: (dispatch_time_usec, op, nbytes) per request, dispatch order
    request_trace: list[tuple[float, str, int]]
    #: network bytes by tag (rdma_read/rdma_write/ib_send/tcp_gige/...)
    network_bytes: dict[str, int]
    #: client-side driver copy time (HPBD pool memcpys), µs
    client_copy_usec: float
    #: per-request blame aggregate (analysis.critpath), µs per class;
    #: populated only on traced runs.  Plain dict — survives pickling
    #: into the sweep cache even though the live trace does not.
    blame_usec: dict[str, float] = field(default_factory=dict)
    #: invariant-monitor violations (repro.obs.monitors), as plain dicts
    invariant_violations: list[dict] = field(default_factory=list)
    #: monitored high-water marks (queue depths etc.)
    monitor_watermarks: dict[str, float] = field(default_factory=dict)
    #: fleet health report (repro.obs.health.HealthHub.report()): SLO
    #: attainment, breach/burn timelines, fail-slow verdicts.  Plain
    #: dict so sweeps aggregate health across the grid from the cache.
    health: dict = field(default_factory=dict)
    registry: StatsRegistry = field(repr=False, default_factory=StatsRegistry)
    #: cross-layer span recording (run_scenario(..., trace=True)), else None
    trace: "TraceRecorder | None" = field(repr=False, default=None)

    def __getstate__(self) -> dict:
        """Pickle support for the sweep process pool and result cache.

        The live trace recorder closes over the simulator clock (a
        lambda) and cannot cross a process boundary; it is dropped.  The
        stats registry serializes as-is — its collectors are plain
        numpy-backed objects — so cached results keep every counter.
        """
        state = self.__dict__.copy()
        state["trace"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        # Results cached before the health field existed unpickle clean.
        state.setdefault("health", {})
        self.__dict__.update(state)

    @property
    def elapsed_sec(self) -> float:
        return self.elapsed_usec / SEC

    @property
    def mean_read_request(self) -> float:
        return float(self.read_request_bytes.mean()) if len(self.read_request_bytes) else 0.0

    @property
    def mean_write_request(self) -> float:
        return float(self.write_request_bytes.mean()) if len(self.write_request_bytes) else 0.0

    def slowdown_vs(self, baseline: "ScenarioResult") -> float:
        """This scenario's time as a multiple of ``baseline``'s."""
        if baseline.elapsed_usec <= 0:
            raise ValueError("degenerate baseline")
        return self.elapsed_usec / baseline.elapsed_usec

    def summary(self) -> str:
        parts = [
            f"{self.label}: {self.elapsed_sec:.2f} s",
            f"out={self.swapout_pages}p in={self.swapin_pages}p",
        ]
        if len(self.write_request_bytes):
            parts.append(f"wreq~{self.mean_write_request / 1024:.0f}KiB")
        if len(self.read_request_bytes):
            parts.append(f"rreq~{self.mean_read_request / 1024:.0f}KiB")
        return "  ".join(parts)
