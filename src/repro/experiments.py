"""Paper-experiment presets: one function per table/figure.

Each ``fig*`` function reproduces one evaluation artifact from the paper
at a configurable ``scale`` (a divisor on data-set and memory sizes;
``scale=1`` is the paper's full size).  Ratios are scale-invariant to a
good approximation because compute, traffic and memory all shrink
together while the cost *models* stay fixed; EXPERIMENTS.md records both
scaled and full-size spot checks.

Every preset also carries the paper's reported numbers (`PAPER_*`) so
benches print measured-vs-paper side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .config import (
    ClusterScenarioConfig,
    FaultConfig,
    HPBD,
    LocalDisk,
    LocalMemory,
    NBD,
    ScenarioConfig,
    TenantSpec,
)
from .faults import (
    CreditStarve,
    FaultPlan,
    LinkDegrade,
    ServerCrash,
    ServerSlow,
)
from .net.fabrics import (
    GIGE_DEFAULT,
    IB_DEFAULT,
    IPOIB_DEFAULT,
    MEMCPY,
    REGISTRATION,
)
from .results import ScenarioResult
from .sweep import SweepPoint, run_sweep
from .units import GiB, KiB, MiB, PAGE_SIZE
from .workloads import BarnesWorkload, QuicksortWorkload, TestswapWorkload
from .workloads.base import Workload

__all__ = [
    "DEFAULT_SCALE",
    "fig01_latency",
    "fig03_registration",
    "fig05_testswap",
    "fig05_points",
    "fig06_reqsize_run",
    "fig06_points",
    "fig07_quicksort",
    "fig07_points",
    "fig08_barnes",
    "fig08_points",
    "fig09_concurrent",
    "fig09_points",
    "fig10_servers",
    "fig10_points",
    "faults_points",
    "cluster_points",
    "campaign_points",
    "cluster_fair_config",
    "cluster_redundancy_config",
    "redundancy_points",
    "cluster_failslow_config",
    "cluster_failslow_mitigated_config",
    "failslow_points",
    "cluster_unfair_config",
    "sec62_runs",
    "SWEEPS",
    "PAPER_FIG5",
    "PAPER_FIG7",
    "PAPER_FIG9",
    "DEVICES_DEFAULT",
]

#: Default divisor for CI-speed runs; EXPERIMENTS.md also records scale=1.
DEFAULT_SCALE = 8

#: Paper Fig. 5 (testswap) execution times, seconds.
PAPER_FIG5 = {
    "local": 5.8,
    "hpbd": 8.4,
    "nbd-ipoib": 10.8,
    "nbd-gige": 12.2,
    "disk": 18.5,
}

#: Paper Fig. 7 (quick sort): local and HPBD given in the text; the
#: NBD/disk values follow from the stated ratios (1.13×, 1.36×, 4.5×).
PAPER_FIG7 = {
    "local": 94.0,
    "hpbd": 138.0,
    "nbd-ipoib": 156.0,
    "nbd-gige": 188.0,
    "disk": 621.0,
}

#: Paper Fig. 9 (two concurrent quick sorts): slowdown vs 2 GiB local.
PAPER_FIG9 = {
    ("hpbd", "50%"): 1.7,
    ("hpbd", "25%"): 2.5,
    ("disk", "25%"): 36.0,
}


def DEVICES_DEFAULT() -> list:
    return [LocalMemory(), HPBD(), NBD("ipoib"), NBD("gige"), LocalDisk()]


# ---------------------------------------------------------------------------
# Microbenchmarks evaluated straight from the calibrated cost models
# ---------------------------------------------------------------------------


def fig01_latency(max_bytes: int = 128 * KiB) -> dict[str, np.ndarray]:
    """Fig. 1: one-way latency vs message size for memcpy, RDMA write,
    IPoIB and GigE.  Returns ``{"sizes": ..., "<series>": usec array}``."""
    sizes = np.array(
        [1] + [1 << k for k in range(2, 18)], dtype=np.int64
    )
    sizes = sizes[sizes <= max_bytes]
    return {
        "sizes": sizes,
        "memcpy": MEMCPY.cost_array(sizes),
        "rdma_write": IB_DEFAULT.latency_curve().cost_array(sizes),
        "ipoib": np.array([IPOIB_DEFAULT.one_way_cost(int(s)) for s in sizes]),
        "gige": np.array([GIGE_DEFAULT.one_way_cost(int(s)) for s in sizes]),
    }


def fig03_registration(max_bytes: int = 128 * KiB) -> dict[str, np.ndarray]:
    """Fig. 3: memory-registration vs memcpy cost over the swap-request
    size range."""
    sizes = np.array([1 << k for k in range(12, 18)], dtype=np.int64)
    sizes = sizes[sizes <= max_bytes]
    return {
        "sizes": sizes,
        "registration": REGISTRATION.cost_array(sizes),
        "memcpy": MEMCPY.cost_array(sizes),
    }


# ---------------------------------------------------------------------------
# Full-system scenarios
# ---------------------------------------------------------------------------


def _scenario(
    workloads: list[Workload],
    device,
    scale: int,
    mem_bytes: int,
    swap_bytes: int,
) -> ScenarioConfig:
    if isinstance(device, LocalMemory):
        swap = 0
    else:
        swap = swap_bytes // scale
    return ScenarioConfig(
        workloads,
        device,
        mem_bytes=mem_bytes // scale,
        swap_bytes=swap,
        mem_reserved_bytes=24 * MiB // scale,
    )


def _device_points(
    fig: str, scale: int, devices: list | None, make_workload
) -> list[SweepPoint]:
    """One point per device: the common fig05/07/08 grid shape."""
    points = []
    for dev in devices if devices is not None else DEVICES_DEFAULT():
        w = make_workload()
        mem = 2 * GiB if isinstance(dev, LocalMemory) else 512 * MiB
        points.append(
            SweepPoint(
                f"{fig}/{dev.label}", _scenario([w], dev, scale, mem, GiB)
            )
        )
    return points


def _results(points, workers, cache, force=False) -> list[ScenarioResult]:
    return run_sweep(points, workers=workers, cache=cache, force=force).results


def fig05_points(
    scale: int = DEFAULT_SCALE, devices: list | None = None
) -> list[SweepPoint]:
    return _device_points(
        "fig05", scale, devices,
        lambda: TestswapWorkload(size_bytes=GiB // scale),
    )


def fig05_testswap(
    scale: int = DEFAULT_SCALE,
    devices: list | None = None,
    *,
    workers: "int | str | None" = None,
    cache=None,
) -> list[ScenarioResult]:
    """Fig. 5: testswap over every device (512 MiB RAM, 1 GiB data)."""
    return _results(fig05_points(scale, devices), workers, cache)


def fig06_points(scale: int = DEFAULT_SCALE) -> list[SweepPoint]:
    w = TestswapWorkload(size_bytes=GiB // scale)
    return [SweepPoint("fig06/hpbd", _scenario([w], HPBD(), scale, 512 * MiB, GiB))]


def fig06_reqsize_run(
    scale: int = DEFAULT_SCALE,
    *,
    workers: "int | str | None" = None,
    cache=None,
) -> ScenarioResult:
    """Fig. 6's input: the testswap-over-HPBD run with its request
    trace (cluster it with :func:`repro.analysis.cluster_requests`)."""
    return _results(fig06_points(scale), workers, cache)[0]


def fig07_points(
    scale: int = DEFAULT_SCALE, devices: list | None = None
) -> list[SweepPoint]:
    return _device_points(
        "fig07", scale, devices,
        lambda: QuicksortWorkload(nelems=256 * 1024 * 1024 // scale),
    )


def fig07_quicksort(
    scale: int = DEFAULT_SCALE,
    devices: list | None = None,
    *,
    workers: "int | str | None" = None,
    cache=None,
) -> list[ScenarioResult]:
    """Fig. 7: quick sort of 256 Mi ints over every device."""
    return _results(fig07_points(scale, devices), workers, cache)


def fig08_points(
    scale: int = 4, devices: list | None = None
) -> list[SweepPoint]:
    return _device_points(
        "fig08", scale, devices,
        lambda: BarnesWorkload(nbodies=2_097_152 // scale),
    )


def fig08_barnes(
    scale: int = 4,
    devices: list | None = None,
    *,
    workers: "int | str | None" = None,
    cache=None,
) -> list[ScenarioResult]:
    """Fig. 8: Barnes (2,097,152 bodies, 516 MiB peak) over every device.

    Default scale is 4 (not 8): Barnes's 4 MiB overflow margin gets
    noisy below ~1/4 size.
    """
    return _results(fig08_points(scale, devices), workers, cache)


@dataclass
class ConcurrentResult:
    """One Fig. 9 cell."""

    label: str
    memory: str  # "local" / "50%" / "25%"
    result: ScenarioResult
    slowdown: float


def fig09_points(
    scale: int = DEFAULT_SCALE,
    nservers: int = 4,
    include_disk: bool = True,
) -> list[SweepPoint]:
    """Point 0 is the 100 %-memory baseline; the rest are the cells.

    Point names carry the memory label (``fig09/<device>@<memory>``) so
    callers can recover the grid from a flat result list.
    """
    def two():
        return [
            QuicksortWorkload(nelems=256 * 1024 * 1024 // scale, seed=100 + i)
            for i in range(2)
        ]

    points = [
        SweepPoint(
            "fig09/local@local",
            _scenario(two(), LocalMemory(), scale, 2 * GiB + 256 * MiB, 0),
        )
    ]
    for mem_label, mem in (("50%", GiB), ("25%", 512 * MiB)):
        devices = [HPBD(nservers=nservers)]
        if include_disk:
            devices.append(LocalDisk())
        for dev in devices:
            points.append(
                SweepPoint(
                    f"fig09/{dev.label}@{mem_label}",
                    _scenario(two(), dev, scale, mem, 2 * GiB),
                )
            )
    return points


def fig09_concurrent(
    scale: int = DEFAULT_SCALE,
    nservers: int = 4,
    include_disk: bool = True,
    *,
    workers: "int | str | None" = None,
    cache=None,
) -> list[ConcurrentResult]:
    """Fig. 9: two concurrent quick sorts at 100 %/50 %/25 % memory.

    "for multiple application execution instances, each memory server is
    configured with 512MB swap area" — total 2 GiB over ``nservers``.
    """
    points = fig09_points(scale, nservers, include_disk)
    results = _results(points, workers, cache)
    base = results[0]
    out = [ConcurrentResult("local", "local", base, 1.0)]
    for point, r in zip(points[1:], results[1:]):
        mem_label = point.name.rsplit("@", 1)[1]
        out.append(
            ConcurrentResult(
                r.label, mem_label, r, r.elapsed_usec / base.elapsed_usec
            )
        )
    return out


def fig10_points(
    scale: int = DEFAULT_SCALE, counts: tuple[int, ...] = (1, 2, 4, 8, 16)
) -> list[SweepPoint]:
    points = []
    for n in counts:
        w = QuicksortWorkload(nelems=256 * 1024 * 1024 // scale)
        points.append(
            SweepPoint(
                f"fig10/n{n}",
                _scenario([w], HPBD(nservers=n), scale, 512 * MiB, GiB),
            )
        )
    return points


def fig10_servers(
    scale: int = DEFAULT_SCALE,
    counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    *,
    workers: "int | str | None" = None,
    cache=None,
) -> list[tuple[int, ScenarioResult]]:
    """Fig. 10: quick sort vs number of memory servers."""
    results = _results(fig10_points(scale, counts), workers, cache)
    return list(zip(counts, results))


def faults_points(scale: int = DEFAULT_SCALE) -> list[SweepPoint]:
    """Fault-injection grid: each recovery mode against its fault.

    Not a paper figure — the reliability extension's sweep: a healthy
    run under the recovery machinery (the control), a mid-run server
    crash absorbed by chunk remapping, by disk fallback, and by a
    mirror replica, plus a degraded link and a credit squeeze.  Every
    point must complete with clean invariant monitors.
    """

    def _cfg(device, faults: FaultConfig) -> ScenarioConfig:
        cfg = _scenario(
            [TestswapWorkload(size_bytes=GiB // scale)],
            device, scale, 512 * MiB, GiB,
        )
        cfg.faults = faults
        return cfg

    # Aim the episodes at the middle of the run so they overlap swap
    # traffic (testswap takes ~8.4e6/scale simulated us end to end).
    mid = 4_200_000.0 / scale
    crash = FaultPlan(events=(ServerCrash(at=mid, server=1),))
    crash0 = FaultPlan(events=(ServerCrash(at=mid, server=0),))
    degrade = FaultPlan(events=(
        LinkDegrade(at=mid, node="mem0", duration=mid / 4,
                    latency_mult=20.0, bandwidth_mult=0.25),
    ))
    starve = FaultPlan(events=(
        CreditStarve(at=mid, server=0, ntokens=8, duration=mid / 4),
    ))
    quad = HPBD(nservers=4)
    return [
        SweepPoint("faults/baseline",
                   _cfg(quad, FaultConfig(degraded_mode="remap"))),
        SweepPoint("faults/crash-remap",
                   _cfg(quad, FaultConfig(plan=crash, degraded_mode="remap"))),
        SweepPoint("faults/crash-disk",
                   _cfg(quad, FaultConfig(plan=crash, degraded_mode="disk"))),
        SweepPoint("faults/degrade",
                   _cfg(quad, FaultConfig(plan=degrade, max_retries=8))),
        SweepPoint("faults/starve", _cfg(quad, FaultConfig(plan=starve))),
        SweepPoint("faults/mirror-crash",
                   _cfg(HPBD(nservers=2, mirror=True),
                        FaultConfig(plan=crash0))),
    ]


def _cluster_tenant(
    name: str,
    scale: int,
    *,
    memdiv: int = 1,
    datamul: int = 1,
    weight: float = 1.0,
) -> TenantSpec:
    """One quicksort tenant at fig07 sizing (512 MiB RAM, 1 GiB data,
    both over ``scale``); ``memdiv``/``datamul`` make it thrash."""
    return TenantSpec(
        name=name,
        workload=QuicksortWorkload(
            nelems=datamul * 256 * 1024 * 1024 // scale, seed=7
        ),
        mem_bytes=512 * MiB // scale // memdiv,
        swap_bytes=datamul * GiB // scale,
        weight=weight,
    )


def cluster_fair_config(
    scale: int = DEFAULT_SCALE,
    nservers: int = 2,
    placement: str = "blocking",
) -> ClusterScenarioConfig:
    """The fairness acceptance run: three *identical* quicksort tenants
    under weighted-fair QoS — completion times must land within 10%."""
    return ClusterScenarioConfig(
        tenants=[_cluster_tenant(f"t{i}", scale) for i in range(3)],
        nservers=nservers,
        placement=placement,
        qos=True,
        mem_reserved_bytes=24 * MiB // scale,
    )


def cluster_failslow_config(
    scale: int = DEFAULT_SCALE,
    nservers: int = 3,
    latency_mult: float = 20.0,
) -> ClusterScenarioConfig:
    """The fail-slow acceptance run (``repro health``): three identical
    quicksort tenants over three servers, with ``mem1``'s link degraded
    mid-run.  Timeouts stay disabled so the recovery machine never
    declares the server dead — it *limps*, which is exactly the failure
    mode the fail-slow detector exists to catch (a crash would already
    surface through the registry heartbeat)."""
    mid = 73_000_000.0 / scale
    degrade = FaultPlan(events=(
        LinkDegrade(at=mid, node="mem1", duration=mid / 2,
                    latency_mult=latency_mult, bandwidth_mult=0.25),
    ))
    return ClusterScenarioConfig(
        tenants=[_cluster_tenant(f"t{i}", scale) for i in range(3)],
        nservers=nservers,
        qos=True,
        mem_reserved_bytes=24 * MiB // scale,
        faults=FaultConfig(plan=degrade, request_timeout_usec=None),
        label="cluster-failslow",
    )


def _mirror_tenant(name: str, scale: int, nservers: int) -> TenantSpec:
    """A fig07-sized quicksort tenant whose swap area is rounded up so
    the mirror's blocking layout splits into page-aligned per-server
    shares."""
    spec = _cluster_tenant(name, scale)
    grain = nservers * PAGE_SIZE
    swap = -(-spec.swap_bytes // grain) * grain
    return replace(spec, swap_bytes=swap)


def cluster_failslow_mitigated_config(
    scale: int = DEFAULT_SCALE,
    nservers: int = 3,
    service_mult: float = 16.0,
    extra_rtt_usec: float = 400.0,
    *,
    slow: bool = True,
    mitigate: bool = True,
) -> ClusterScenarioConfig:
    """The limping-server mitigation run: three mirrored quicksort
    tenants with ``mem1`` fail-slow mid-run — its memcpy service rate
    scaled by ``service_mult`` and every op stalled ``extra_rtt_usec``.
    Timeouts stay disabled (the server limps, it never dies), so the
    only defenses are the ones this config arms: ``mitigate=True``
    turns on EWMA replica selection, hedged reads, and quarantine;
    ``mitigate=False`` is the unmitigated cliff; ``slow=False`` is the
    healthy mirrored baseline the acceptance gate compares against."""
    mid = 73_000_000.0 / scale
    plan = None
    if slow:
        plan = FaultPlan(events=(
            ServerSlow(at=mid, server=1, duration=mid / 2,
                       service_mult=service_mult,
                       extra_rtt_usec=extra_rtt_usec),
        ))
    label = "cluster-mirror-healthy"
    if slow:
        label = ("cluster-failslow-mitigated" if mitigate
                 else "cluster-failslow-unmitigated")
    return ClusterScenarioConfig(
        tenants=[
            _mirror_tenant(f"t{i}", scale, nservers) for i in range(3)
        ],
        nservers=nservers,
        mirror=True,
        qos=True,
        mem_reserved_bytes=24 * MiB // scale,
        faults=FaultConfig(
            plan=plan,
            request_timeout_usec=None,
            ewma_select=mitigate,
            hedge_reads=mitigate,
        ),
        label=label,
    )


def failslow_points(scale: int = DEFAULT_SCALE) -> list[SweepPoint]:
    """The limping-server grid: healthy mirrored baseline, the
    unmitigated cliff, and the mitigated run the acceptance gate
    compares against it."""
    return [
        SweepPoint(
            "failslow/healthy",
            cluster_failslow_mitigated_config(scale, slow=False),
        ),
        SweepPoint(
            "failslow/unmitigated",
            cluster_failslow_mitigated_config(scale, mitigate=False),
        ),
        SweepPoint(
            "failslow/mitigated",
            cluster_failslow_mitigated_config(scale),
        ),
    ]


def cluster_unfair_config(
    scale: int = DEFAULT_SCALE, nservers: int = 2
) -> ClusterScenarioConfig:
    """The unfair baseline: QoS off, one thrashing tenant (quarter the
    memory, double the data) sharing the fleet with two healthy ones —
    the spread the QoS machinery exists to prevent (>= 2x)."""
    return ClusterScenarioConfig(
        tenants=[
            _cluster_tenant("thrash", scale, memdiv=4, datamul=2),
            _cluster_tenant("t1", scale),
            _cluster_tenant("t2", scale),
        ],
        nservers=nservers,
        qos=False,
        mem_reserved_bytes=24 * MiB // scale,
    )


def cluster_redundancy_config(
    scale: int = DEFAULT_SCALE,
    redundancy: str = "rs(4,2)",
    *,
    nservers: int = 8,
    crashes: "tuple[tuple[float, int], ...]" = ((120_000.0, 2),),
    down_for: float = 40_000.0,
    throttle_mib_s: "float | None" = 400.0,
    spare_after_usec: "float | None" = None,
    label: "str | None" = None,
) -> ClusterScenarioConfig:
    """The durability acceptance run: one quicksort tenant whose swap
    area is protected by ``redundancy``, with mid-run server crashes
    (wipe + 40 ms outage + restart) the repair manager must absorb —
    degraded reads while a member is down, a rebuild once it restarts,
    and zero invariant violations end to end.

    Sizes are fixed (not paper-scaled): the point is durability
    mechanics, not figure timing, and the fixed 8 MiB swap area keeps
    the stripe-divisibility constraints valid for every policy in the
    grid at any ``scale``.  ``crashes`` is a tuple of ``(at_usec,
    server)`` pairs; the defaults aim each outage at the shard the
    quicksort read frontier is sweeping at that moment (the ~420 ms
    run walks its address space roughly linearly), so the crash
    provably intersects live reads and the degraded path gets
    exercised, not just the rebuild.
    """
    del scale  # fixed-size run; accepted for SWEEPS uniformity
    events = tuple(
        ServerCrash(at=at, server=server, down_for=down_for)
        for at, server in crashes
    )
    faults = FaultConfig(plan=FaultPlan(events=events)) if events else None
    return ClusterScenarioConfig(
        tenants=[
            TenantSpec(
                name="t0",
                workload=QuicksortWorkload(nelems=768 * 1024, seed=7),
                mem_bytes=3 * MiB,
                swap_bytes=8 * MiB,
                redundancy=redundancy,
            )
        ],
        nservers=nservers,
        qos=True,
        mem_reserved_bytes=MiB,
        faults=faults,
        migration_throttle_mib_s=throttle_mib_s,
        repair_spare_after_usec=spare_after_usec,
        label=label or f"redundancy-{redundancy}",
    )


def redundancy_points(scale: int = DEFAULT_SCALE) -> list[SweepPoint]:
    """The durability/overhead grid ``repro sweep redundancy`` runs:
    an unprotected baseline, 2-way mirroring and RS(4,2) each absorbing
    a mid-run crash, RS(4,2) under *two* staggered crashes (its full
    fault tolerance), and RS(2,1) rebuilding under a deliberately tight
    migration throttle (``mig.throttle_waits`` must fire).  Together
    the points show the headline trade: RS(4,2) survives the same
    double fault as 3-way replication at 1.5x memory instead of 3x.
    """
    return [
        SweepPoint(
            "redundancy/none",
            cluster_redundancy_config(scale, "none", crashes=()),
        ),
        SweepPoint(
            "redundancy/nway2-crash",
            cluster_redundancy_config(
                scale, "nway(2)", crashes=((90_000.0, 2),)
            ),
        ),
        SweepPoint(
            "redundancy/rs42-crash",
            cluster_redundancy_config(scale, "rs(4,2)"),
        ),
        SweepPoint(
            "redundancy/rs42-crash2",
            cluster_redundancy_config(
                scale, "rs(4,2)",
                crashes=((120_000.0, 2), (200_000.0, 3)),
            ),
        ),
        SweepPoint(
            "redundancy/rs21-tight-throttle",
            cluster_redundancy_config(
                scale, "rs(2,1)",
                crashes=((140_000.0, 1),),
                throttle_mib_s=128.0,
            ),
        ),
    ]


def cluster_points(scale: int = DEFAULT_SCALE) -> list[SweepPoint]:
    """Cluster grid: clients x servers x placement policy, all under
    QoS, plus the QoS-off unfair baseline."""
    points = []
    for nclients in (2, 3):
        for nservers in (2, 4):
            for policy in ("blocking", "least_loaded", "hash"):
                cfg = ClusterScenarioConfig(
                    tenants=[
                        _cluster_tenant(f"t{i}", scale)
                        for i in range(nclients)
                    ],
                    nservers=nservers,
                    placement=policy,
                    qos=True,
                    mem_reserved_bytes=24 * MiB // scale,
                )
                points.append(
                    SweepPoint(
                        f"cluster/c{nclients}s{nservers}/{policy}", cfg
                    )
                )
    points.append(
        SweepPoint("cluster/unfair-baseline", cluster_unfair_config(scale))
    )
    return points


def campaign_points(scale: int = DEFAULT_SCALE) -> list[SweepPoint]:
    """The campaign preset: a small cluster grid with one deliberately
    degraded point, sized for seed replication.  The fair points give
    the regression gate a healthy baseline; the fail-slow point is the
    known-bad outlier CI uses to prove ``repro compare`` actually fires
    (relabel it onto a fair point's name and the latency regression
    must flag as significant)."""
    return [
        SweepPoint("campaign/fair-2s", cluster_fair_config(scale)),
        SweepPoint(
            "campaign/fair-3s", cluster_fair_config(scale, nservers=3)
        ),
        SweepPoint("campaign/failslow", cluster_failslow_config(scale)),
        SweepPoint("campaign/redundancy", cluster_redundancy_config(scale)),
    ]


def sec62_runs(
    scale: int = DEFAULT_SCALE,
    *,
    workers: "int | str | None" = None,
    cache=None,
) -> dict[str, ScenarioResult]:
    """The four testswap runs the §6.2 Amdahl analysis needs."""
    results = fig05_testswap(scale, workers=workers, cache=cache)
    return {r.label: r for r in results}


#: Sweepable experiments: name -> (points builder taking ``scale``,
#: human description).  Used by ``repro sweep``.
SWEEPS: dict = {
    "fig05": (fig05_points, "testswap across devices"),
    "fig06": (fig06_points, "testswap over HPBD (request trace)"),
    "fig07": (fig07_points, "quick sort across devices"),
    "fig08": (lambda scale: fig08_points(max(1, scale // 2)),
              "Barnes across devices"),
    "fig09": (fig09_points, "two concurrent quick sorts"),
    "fig10": (fig10_points, "quick sort vs number of servers"),
    "faults": (faults_points, "fault injection / recovery grid"),
    "cluster": (cluster_points,
                "multi-tenant cluster: clients x servers x placement"),
    "failslow": (failslow_points,
                 "limping server: healthy / unmitigated / mitigated"),
    "campaign": (campaign_points,
                 "campaign preset: fair cluster points + fail-slow outlier"),
    "redundancy": (redundancy_points,
                   "erasure-coded durability: crash survival vs overhead"),
}
