"""Blocking synchronization primitives for simulated processes.

Everything here is FIFO and deterministic.  The primitives map directly
onto kernel objects in the modelled system:

* :class:`Resource` — counted resource (CPU, DMA engines, outstanding-RDMA
  slots).  ``yield res.acquire()`` / ``res.release()``.
* :class:`Mutex` — a Resource of capacity 1; models spinlocks guarding the
  HPBD request queue and buffer pool.
* :class:`Store` — an unbounded FIFO queue of items with blocking ``get``;
  models request queues between threads.
* :class:`WaitQueue` — condition-variable-style sleep/wakeup; models the
  buffer-pool allocation wait queue and kswapd wakeups.
* :class:`TokenBucket` — counted credits with blocking acquire of N;
  models the HPBD water-mark flow control.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .core import Event, Simulator
from .errors import SimulationError

__all__ = ["Resource", "Mutex", "Store", "WaitQueue", "TokenBucket"]


class Resource:
    """A counted, FIFO-fair resource.

    ``capacity`` units exist; ``acquire(n)`` returns an event that succeeds
    once ``n`` units could be handed over.  Units are fungible — there is
    no per-unit identity.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or f"resource({capacity})"
        self._available = capacity
        self._waiters: deque[tuple[Event, int]] = deque()
        # occupancy statistics (time-weighted)
        self._busy_area = 0.0
        self._last_change = sim.now

    # -- stats -----------------------------------------------------------

    @property
    def available(self) -> int:
        return self._available

    @property
    def in_use(self) -> int:
        return self.capacity - self._available

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def utilization(self) -> float:
        """Time-averaged fraction of capacity in use since t=0."""
        self._account()
        if self.sim.now <= 0:
            return 0.0
        return self._busy_area / (self.sim.now * self.capacity)

    def _account(self) -> None:
        dt = self.sim.now - self._last_change
        if dt > 0:
            self._busy_area += dt * self.in_use
            self._last_change = self.sim.now

    # -- operations --------------------------------------------------------

    def acquire(self, units: int = 1) -> Event:
        if units < 1 or units > self.capacity:
            raise ValueError(
                f"{self.name}: cannot acquire {units} of {self.capacity}"
            )
        self._account()
        evt = Event(self.sim, name=f"{self.name}.acquire")
        if not self._waiters and self._available >= units:
            self._available -= units
            evt.succeed(units)
        else:
            self._waiters.append((evt, units))
        return evt

    def try_acquire(self, units: int = 1) -> bool:
        """Non-blocking acquire; True on success."""
        if units < 1 or units > self.capacity:
            raise ValueError(
                f"{self.name}: cannot acquire {units} of {self.capacity}"
            )
        if not self._waiters and self._available >= units:
            self._account()
            self._available -= units
            return True
        return False

    def release(self, units: int = 1) -> None:
        self._account()
        self._available += units
        if self._available > self.capacity:
            self.sim.monitors.violation(
                "resource.over_release", self.name,
                "released more units than acquired",
                available=self._available, capacity=self.capacity,
            )
            raise SimulationError(
                f"{self.name}: released more than acquired "
                f"({self._available}/{self.capacity})"
            )
        # FIFO hand-off: only the head may proceed (no barging).
        # Skip waits abandoned by an interrupt — granting to them would
        # leak capacity forever.
        while self._waiters:
            if self._waiters[0][0].abandoned:
                self._waiters.popleft()
                continue
            if self._available < self._waiters[0][1]:
                break
            evt, n = self._waiters.popleft()
            self._available -= n
            evt.succeed(n)


class Mutex(Resource):
    """A capacity-1 resource with lock/unlock naming."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        super().__init__(sim, 1, name or "mutex")

    def lock(self) -> Event:
        return self.acquire(1)

    def unlock(self) -> None:
        self.release(1)

    @property
    def locked(self) -> bool:
        return self.in_use > 0


class Store:
    """An unbounded FIFO queue with blocking ``get``.

    ``put`` never blocks (the modelled kernel queues are memory-bounded
    elsewhere, e.g. by flow-control credits).  ``get`` returns an event
    that succeeds with the oldest item.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name or "store"
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.total_put = 0
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._items)

    def _pop_live_getter(self) -> "Event | None":
        while self._getters:
            evt = self._getters.popleft()
            if not evt.abandoned:
                return evt
        return None

    def put(self, item: Any) -> None:
        self.total_put += 1
        getter = self._pop_live_getter()
        if getter is not None:
            getter.succeed(item)
            return
        self._items.append(item)
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)

    def put_front(self, item: Any) -> None:
        """Requeue an item at the head (used for retried requests)."""
        self.total_put += 1
        getter = self._pop_live_getter()
        if getter is not None:
            getter.succeed(item)
            return
        self._items.appendleft(item)
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)

    def get(self) -> Event:
        evt = Event(self.sim, name=f"{self.name}.get")
        if self._items:
            evt.succeed(self._items.popleft())
        else:
            self._getters.append(evt)
        return evt

    def try_get(self) -> Any | None:
        return self._items.popleft() if self._items else None

    def drain(self) -> list[Any]:
        """Remove and return all queued items (receiver burst processing)."""
        out = list(self._items)
        self._items.clear()
        return out


class WaitQueue:
    """Condition-variable-style sleep/wakeup (kernel ``wait_queue_head_t``).

    ``wait()`` returns an event the caller yields on; ``wake_one`` /
    ``wake_all`` succeed the oldest / all pending waits.  Wakeups with no
    waiters are remembered as a single pending token if ``latch=True``
    (edge-triggered completion-event semantics, used for CQ event
    notification where an event arriving while the receiver is processing
    must not be lost).
    """

    def __init__(self, sim: Simulator, name: str = "", latch: bool = False) -> None:
        self.sim = sim
        self.name = name or "waitqueue"
        self.latch = latch
        self._waiters: deque[Event] = deque()
        self._pending_token = False
        self.wakeups = 0

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        evt = Event(self.sim, name=f"{self.name}.wait")
        if self.latch and self._pending_token:
            self._pending_token = False
            evt.succeed(None)
            return evt
        self._waiters.append(evt)
        return evt

    def wake_one(self, value: Any = None) -> bool:
        """Wake the oldest waiter.  Returns True if someone was woken."""
        self.wakeups += 1
        while self._waiters:
            evt = self._waiters.popleft()
            if evt.abandoned:
                continue
            evt.succeed(value)
            return True
        if self.latch:
            self._pending_token = True
        return False

    def wake_all(self, value: Any = None) -> int:
        """Wake every waiter; returns the number woken."""
        self.wakeups += 1
        n = 0
        while self._waiters:
            evt = self._waiters.popleft()
            if evt.abandoned:
                continue
            evt.succeed(value)
            n += 1
        if n == 0 and self.latch:
            self._pending_token = True
        return n


class TokenBucket:
    """Counted credits with blocking acquisition (HPBD flow control).

    The client may send a request only while outstanding requests are
    below the water-mark; otherwise the request queues until replies
    return credits.  ``acquire(n)`` blocks FIFO until ``n`` credits are
    simultaneously available.
    """

    def __init__(self, sim: Simulator, tokens: int, name: str = "") -> None:
        if tokens < 1:
            raise ValueError("token bucket needs at least one token")
        self.sim = sim
        self.name = name or f"credits({tokens})"
        self.capacity = tokens
        self._tokens = tokens
        self._waiters: deque[tuple[Event, int]] = deque()
        self.stall_count = 0  # acquisitions that had to wait

    @property
    def tokens(self) -> int:
        return self._tokens

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self, n: int = 1) -> Event:
        if n < 1 or n > self.capacity:
            raise ValueError(f"{self.name}: bad credit count {n}")
        evt = Event(self.sim, name=f"{self.name}.acquire")
        if not self._waiters and self._tokens >= n:
            self._tokens -= n
            if self._tokens < 0:
                # Unreachable through acquire() itself; guards against
                # future code poking _tokens directly.
                self.sim.monitors.violation(
                    "credits.negative", self.name,
                    "credit count went negative",
                    tokens=self._tokens,
                )
            evt.succeed(n)
        else:
            self.stall_count += 1
            self._waiters.append((evt, n))
        return evt

    def release(self, n: int = 1) -> None:
        self._tokens += n
        if self._tokens > self.capacity:
            self.sim.monitors.violation(
                "credits.overflow", self.name,
                "more credits released than the water-mark",
                tokens=self._tokens, capacity=self.capacity,
            )
            raise SimulationError(
                f"{self.name}: credit overflow ({self._tokens}/{self.capacity})"
            )
        while self._waiters:
            if self._waiters[0][0].abandoned:
                self._waiters.popleft()
                continue
            if self._tokens < self._waiters[0][1]:
                break
            evt, want = self._waiters.popleft()
            self._tokens -= want
            evt.succeed(want)
