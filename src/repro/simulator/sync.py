"""Composite events: wait for *all* or *any* of a set of events.

These mirror SimPy's ``AllOf``/``AnyOf`` but are deliberately small.  They
are used by the HPBD server (wait for "new request OR rdma completion")
and by the experiment runner (join several workload processes).
"""

from __future__ import annotations

from collections.abc import Iterable

from .core import Event, Simulator

__all__ = ["all_of", "any_of"]


def all_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that succeeds once every input event has succeeded.

    Its value is the list of input values, in input order.  If any input
    fails, the composite fails with that exception (first failure wins).
    """
    events = list(events)
    out = Event(sim, name="all_of")
    remaining = len(events)
    values: list[object] = [None] * len(events)
    if remaining == 0:
        out.succeed([])
        return out

    def make_cb(i: int):
        def _cb(evt: Event) -> None:
            nonlocal remaining
            if out.triggered:
                return
            if not evt.ok:
                out.fail(evt.value)
                return
            values[i] = evt.value
            remaining -= 1
            if remaining == 0:
                out.succeed(values)

        return _cb

    for i, evt in enumerate(events):
        if evt.processed:
            if not evt.ok:
                if not out.triggered:
                    out.fail(evt.value)
                break
            values[i] = evt.value
            remaining -= 1
        else:
            evt.callbacks.append(make_cb(i))
    if not out.triggered and remaining == 0:
        out.succeed(values)
    return out


def any_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that mirrors the first input event to trigger.

    Its value is ``(index, value)`` of the winning event.  Failures
    propagate.  Remaining events keep their own callbacks and may still
    fire for other waiters; the composite simply ignores them.
    """
    events = list(events)
    if not events:
        raise ValueError("any_of needs at least one event")
    out = Event(sim, name="any_of")

    def make_cb(i: int):
        def _cb(evt: Event) -> None:
            if out.triggered:
                return
            if evt.ok:
                out.succeed((i, evt.value))
            else:
                out.fail(evt.value)

        return _cb

    for i, evt in enumerate(events):
        if evt.processed:
            if evt.ok:
                out.succeed((i, evt.value))
            else:
                out.fail(evt.value)
            return out
        evt.callbacks.append(make_cb(i))
    return out
