"""Fluid-flow fast path for bulk transfers.

A multi-page spill, migration, or stream is, in discrete-event terms, a
chain of per-page timer events: tens of thousands of scheduler entries
that exist only to advance a byte counter.  When nothing can observe the
intermediate state — no competing flow on the channel, no tracer, no
fault window — that chain is *fluid*: its trajectory is an analytic
function of time, and one completion event carries the same information
as the whole chain.

:class:`FluidChannel` models a rate-limited pipe shared by bulk flows
under page-granular processor sharing:

* **collapsed (analytic) mode** — a flow alone on an untraced channel
  schedules a single timer at ``segment_start + remaining/rate``: O(1)
  scheduler entries per transfer instead of O(pages);
* **expanded (discrete) mode** — the moment a competing flow joins, a
  tracer is enabled, or :attr:`FluidChannel.force_discrete` is set (fault
  windows), flows step page by page, each page deadline computed from
  byte progress (``segment_start + bytes/share``) so rate changes take
  effect at page boundaries.

Expansion is exact: an analytic flow that gets disturbed reconstructs
the page index the discrete chain would have reached (its pending
completion timer is tombstoned via :meth:`~repro.simulator.Event.cancel`
— the lazy-cancellation path this scheduler exists for) and resumes on
the *identical* page-boundary grid.  Because every deadline is derived
from the same ``segment_start + bytes/share`` expression — never from
accumulated increments — a traced (forced-discrete) run and an untraced
(collapsing) run produce bit-identical completion times, which the test
suite asserts.

Rates are in **bytes per microsecond** to match the kernel clock.
"""

from __future__ import annotations

from .core import Process, Simulator
from .stats import StatsRegistry
from .sync import any_of

__all__ = ["FluidChannel", "BulkFlow"]


class BulkFlow:
    """One bulk transfer in flight on a :class:`FluidChannel`."""

    __slots__ = ("name", "nbytes", "done_bytes", "_disturb", "process")

    def __init__(self, name: str, nbytes: int) -> None:
        self.name = name
        self.nbytes = nbytes
        #: bytes known transferred (updated at page boundaries / expansion)
        self.done_bytes = 0.0
        #: pending wake-up event while the flow is collapsed (None when
        #: discrete); succeeded by the channel when membership changes.
        self._disturb = None
        #: the driving process (set by FluidChannel.transfer)
        self.process: Process | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BulkFlow {self.name} {self.done_bytes:.0f}/{self.nbytes} B>"
        )


class FluidChannel:
    """A rate-shared bulk pipe with an analytic single-event fast path.

    ``rate_bytes_per_usec`` is the channel capacity; concurrent flows
    share it equally (processor sharing at page granularity: a page in
    flight finishes at the share it started with, and new shares apply
    from the next page boundary).
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bytes_per_usec: float,
        page_bytes: int = 4096,
        name: str = "fluid",
        stats: StatsRegistry | None = None,
    ) -> None:
        if rate_bytes_per_usec <= 0:
            raise ValueError(f"bad channel rate {rate_bytes_per_usec}")
        if page_bytes <= 0:
            raise ValueError(f"bad page size {page_bytes}")
        self.sim = sim
        self.rate = float(rate_bytes_per_usec)
        self.page_bytes = page_bytes
        self.name = name
        self.stats = stats if stats is not None else StatsRegistry()
        #: set while a fault window (or any other observer that needs
        #: per-page state) is open: forces discrete stepping exactly
        #: like an enabled tracer does.
        self.force_discrete = False
        self._flows: list[BulkFlow] = []
        #: bumped on every join/leave; discrete flows poll it at page
        #: boundaries to notice membership changes.
        self._epoch = 0
        self._c_transfers = self.stats.counter(f"{name}.transfers")
        self._c_bytes = self.stats.counter(f"{name}.bytes")
        self._c_collapsed = self.stats.counter(f"{name}.collapsed_segments")
        self._c_pages = self.stats.counter(f"{name}.discrete_pages")
        self._c_expansions = self.stats.counter(f"{name}.expansions")

    # -- introspection -------------------------------------------------------

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    # -- API -----------------------------------------------------------------

    def transfer(self, nbytes: int, name: str = "") -> Process:
        """Move ``nbytes`` through the channel; returns the driving
        process (itself an event — ``yield channel.transfer(...)`` joins
        it).  The process value is the flow's byte count."""
        if nbytes <= 0:
            raise ValueError(f"bad transfer size {nbytes}")
        flow = BulkFlow(name or f"{self.name}.flow", nbytes)
        flow.process = self.sim.spawn(
            self._run_flow(flow), name=f"{self.name}.xfer"
        )
        return flow.process

    # -- membership ----------------------------------------------------------

    def _join(self, flow: BulkFlow) -> None:
        self._flows.append(flow)
        self._epoch += 1
        self._wake_collapsed(flow)

    def _leave(self, flow: BulkFlow) -> None:
        self._flows.remove(flow)
        self._epoch += 1
        # A leave cannot disturb a collapsed flow (collapse requires
        # being alone), so only discrete flows need to notice — they
        # poll the epoch at their next page boundary.

    def _wake_collapsed(self, joiner: BulkFlow) -> None:
        for other in self._flows:
            if other is joiner:
                continue
            disturb = other._disturb
            if disturb is not None and not disturb.triggered:
                disturb.succeed()

    # -- the flow body -------------------------------------------------------

    def _deadline(self, seg_start: float, seg_rem: float, share: float,
                  k: int) -> float:
        """Deadline of the ``k``-th page boundary of a segment.

        Always the same expression — ``start + bytes/share`` — whether
        evaluated eagerly (discrete) or reconstructed after an analytic
        collapse, so both paths land on bit-identical times.
        """
        sent = float(k) * self.page_bytes
        if sent > seg_rem:
            sent = seg_rem
        return seg_start + sent / share

    def _run_flow(self, flow: BulkFlow):
        sim = self.sim
        page = self.page_bytes
        self._c_transfers.add()
        self._join(flow)
        try:
            while flow.done_bytes < flow.nbytes:
                # ---- segment start (page boundary, or transfer start)
                seg_start = sim.now
                seg_base = flow.done_bytes
                seg_rem = flow.nbytes - seg_base
                share = self.rate / len(self._flows)
                trace = sim.trace
                if (
                    len(self._flows) == 1
                    and not trace.enabled
                    and not self.force_discrete
                ):
                    # ---- collapsed: one event for the whole remainder
                    self._c_collapsed.add()
                    completion = seg_start + seg_rem / share
                    timer = sim.timeout(completion - sim.now)
                    disturb = flow._disturb = sim.event(
                        f"{self.name}.disturb"
                    )
                    idx, _ = yield any_of(sim, [timer, disturb])
                    flow._disturb = None
                    if idx == 0:
                        flow.done_bytes = float(flow.nbytes)
                        break
                    # ---- expand: a competitor joined mid-segment.
                    # Tombstone the analytic timer and reconstruct the
                    # page index the discrete chain would be at.
                    timer.cancel()
                    self._c_expansions.add()
                    now = sim.now
                    k = int((now - seg_start) * share / page)
                    while self._deadline(seg_start, seg_rem, share, k + 1) <= now:
                        k += 1
                    while k > 0 and self._deadline(seg_start, seg_rem, share, k) > now:
                        k -= 1
                    done = float(k) * page
                    if done > seg_rem:  # pragma: no cover - clipped above
                        done = seg_rem
                    flow.done_bytes = seg_base + done
                    if flow.done_bytes >= flow.nbytes:
                        break
                    # Finish the in-progress page at the *old* share —
                    # exactly what the discrete chain would do — then
                    # re-enter the loop to start a shared segment.
                    boundary = self._deadline(seg_start, seg_rem, share, k + 1)
                    yield sim.timeout(boundary - now)
                    sent = float(k + 1) * page
                    if sent > seg_rem:
                        sent = seg_rem
                    flow.done_bytes = seg_base + sent
                else:
                    # ---- discrete: step page by page until the
                    # membership epoch moves or the flow completes.
                    epoch = self._epoch
                    k = 0
                    while flow.done_bytes < flow.nbytes and self._epoch == epoch:
                        k += 1
                        boundary = self._deadline(seg_start, seg_rem, share, k)
                        t0 = sim.now
                        yield sim.timeout(boundary - sim.now)
                        sent = float(k) * page
                        if sent > seg_rem:
                            sent = seg_rem
                        flow.done_bytes = seg_base + sent
                        self._c_pages.add()
                        if trace.enabled:
                            trace.complete(
                                flow.name, "fluid", "page", "fluid.page",
                                t0, sim.now,
                                bytes=min(page, int(sent - (k - 1) * page)),
                                share=share,
                            )
        finally:
            self._leave(flow)
        self._c_bytes.add(int(flow.done_bytes))
        return flow.done_bytes
