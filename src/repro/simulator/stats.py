"""Measurement plumbing: counters, tallies and time series.

Every component in the reproduction exposes a :class:`StatsRegistry` so
experiments can pull out the same quantities the paper reports —
request-size histograms (Fig. 6), time-in-network vs time-on-host
(the Amdahl decomposition in §6.2), device utilization, and so on.

Collectors are numpy-backed append-only buffers that grow geometrically,
so recording a sample is O(1) amortized and analysis is vectorized.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

__all__ = ["Counter", "Tally", "TimeSeries", "StatsRegistry"]


class Counter:
    """A monotonically increasing named count (optionally with a sum)."""

    __slots__ = ("name", "count", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.count += 1
        self.total += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}: n={self.count}, total={self.total:g})"


class Tally:
    """Streaming sample collector with summary statistics.

    Keeps every sample (numpy buffer) so percentiles and histograms are
    exact; memory is fine at the scale of this reproduction (≲10⁶ samples
    per run).
    """

    __slots__ = ("name", "_buf", "_n")

    def __init__(self, name: str, initial_capacity: int = 1024) -> None:
        self.name = name
        self._buf = np.empty(initial_capacity, dtype=np.float64)
        self._n = 0

    def record(self, value: float) -> None:
        if self._n == len(self._buf):
            # max() guards initial_capacity=0: doubling 0 stays 0.
            self._buf = np.resize(self._buf, max(len(self._buf) * 2, 8))
        self._buf[self._n] = value
        self._n += 1

    def record_many(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        need = self._n + len(values)
        if need > len(self._buf):
            newcap = max(need, len(self._buf) * 2)
            self._buf = np.resize(self._buf, newcap)
        self._buf[self._n : need] = values
        self._n = need

    # -- views ----------------------------------------------------------

    @property
    def count(self) -> int:
        return self._n

    def values(self) -> np.ndarray:
        return self._buf[: self._n]

    @property
    def total(self) -> float:
        return float(self.values().sum()) if self._n else 0.0

    @property
    def mean(self) -> float:
        return float(self.values().mean()) if self._n else math.nan

    @property
    def std(self) -> float:
        return float(self.values().std()) if self._n else math.nan

    @property
    def min(self) -> float:
        return float(self.values().min()) if self._n else math.nan

    @property
    def max(self) -> float:
        return float(self.values().max()) if self._n else math.nan

    def percentile(self, q: float) -> float:
        if not self._n:
            return math.nan
        return float(np.percentile(self.values(), q))

    def histogram(self, bins: int | np.ndarray = 20) -> tuple[np.ndarray, np.ndarray]:
        return np.histogram(self.values(), bins=bins)

    def __getstate__(self) -> dict:
        """Trim the growth buffer's uninitialized tail before pickling:
        equal sample streams must serialize to equal bytes (the sweep
        cache and the scheduler-equivalence harness both compare pickled
        results byte-for-byte)."""
        return {"name": self.name, "buf": self._buf[: self._n].copy()}

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self._buf = state["buf"]
        self._n = len(self._buf)

    def __repr__(self) -> str:
        if not self._n:
            return f"Tally({self.name}: empty)"
        return (
            f"Tally({self.name}: n={self._n}, mean={self.mean:g}, "
            f"min={self.min:g}, max={self.max:g})"
        )


class TimeSeries:
    """(time, value) samples — e.g. free-page count over time."""

    __slots__ = ("name", "_t", "_v", "_n")

    def __init__(self, name: str, initial_capacity: int = 1024) -> None:
        self.name = name
        self._t = np.empty(initial_capacity, dtype=np.float64)
        self._v = np.empty(initial_capacity, dtype=np.float64)
        self._n = 0

    def record(self, t: float, value: float) -> None:
        if self._n == len(self._t):
            newcap = max(len(self._t) * 2, 8)  # guard initial_capacity=0
            self._t = np.resize(self._t, newcap)
            self._v = np.resize(self._v, newcap)
        self._t[self._n] = t
        self._v[self._n] = value
        self._n += 1

    @property
    def count(self) -> int:
        return self._n

    def times(self) -> np.ndarray:
        return self._t[: self._n]

    def values(self) -> np.ndarray:
        return self._v[: self._n]

    def time_weighted_mean(self) -> float:
        """Mean of a piecewise-constant signal sampled at change points."""
        if self._n < 2:
            return float(self._v[0]) if self._n else math.nan
        t, v = self.times(), self.values()
        dt = np.diff(t)
        span = t[-1] - t[0]
        if span <= 0:
            return float(v.mean())
        return float((v[:-1] * dt).sum() / span)

    def __getstate__(self) -> dict:
        """Same deterministic-pickle contract as :class:`Tally`."""
        return {
            "name": self.name,
            "t": self._t[: self._n].copy(),
            "v": self._v[: self._n].copy(),
        }

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self._t = state["t"]
        self._v = state["v"]
        self._n = len(self._t)

    def __repr__(self) -> str:
        return f"TimeSeries({self.name}: n={self._n})"


class StatsRegistry:
    """A flat namespace of collectors, shared across one simulation run."""

    def __init__(self) -> None:
        self._items: dict[str, Any] = {}

    def counter(self, name: str) -> Counter:
        item = self._items.get(name)
        if item is None:
            item = self._items[name] = Counter(name)
        elif not isinstance(item, Counter):
            raise TypeError(f"{name} already registered as {type(item).__name__}")
        return item

    def tally(self, name: str) -> Tally:
        item = self._items.get(name)
        if item is None:
            item = self._items[name] = Tally(name)
        elif not isinstance(item, Tally):
            raise TypeError(f"{name} already registered as {type(item).__name__}")
        return item

    def sketch(self, name: str, rel_err: float = 0.01, max_bins: int = 4096):
        """A bounded-memory quantile sketch (:mod:`repro.obs.sketch`).

        Drop-in for :meth:`tally` on the always-on hot path: same
        ``record``/``record_many``/``percentile`` surface, O(bins)
        memory instead of O(samples).  ``rel_err``/``max_bins`` only
        apply on first registration.
        """
        from ..obs.sketch import QuantileSketch

        item = self._items.get(name)
        if item is None:
            item = self._items[name] = QuantileSketch(
                name, rel_err=rel_err, max_bins=max_bins
            )
        elif not isinstance(item, QuantileSketch):
            raise TypeError(f"{name} already registered as {type(item).__name__}")
        return item

    def timeseries(self, name: str) -> TimeSeries:
        item = self._items.get(name)
        if item is None:
            item = self._items[name] = TimeSeries(name)
        elif not isinstance(item, TimeSeries):
            raise TypeError(f"{name} already registered as {type(item).__name__}")
        return item

    def get(self, name: str) -> Any | None:
        return self._items.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._items

    def names(self) -> list[str]:
        return sorted(self._items)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Plain-dict summary (for EXPERIMENTS.md tables and tests)."""
        out: dict[str, dict[str, float]] = {}
        for name, item in sorted(self._items.items()):
            if isinstance(item, Counter):
                out[name] = {"count": item.count, "total": item.total}
            elif isinstance(item, Tally):
                out[name] = {
                    "count": item.count,
                    "total": item.total,
                    "mean": item.mean,
                    "max": item.max,
                    "p50": item.percentile(50),
                    "p95": item.percentile(95),
                    "p99": item.percentile(99),
                }
            elif isinstance(item, TimeSeries):
                out[name] = {
                    "count": item.count,
                    "time_weighted_mean": item.time_weighted_mean(),
                }
            else:  # QuantileSketch (duck-typed: avoids an obs import here)
                out[name] = {
                    "count": item.count,
                    "total": item.total,
                    "mean": item.mean,
                    "max": item.max,
                    "p50": item.percentile(50),
                    "p95": item.percentile(95),
                    "p99": item.percentile(99),
                }
        return out
