"""Exception types raised by the discrete-event simulation kernel.

The kernel distinguishes between *programming* errors (scheduling in the
past, resuming a dead process) and *simulation* control flow (a process
being interrupted).  Interrupts are delivered by throwing
:class:`Interrupted` into the target process generator, mirroring how a
kernel thread sees ``-EINTR``.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level simulation errors."""


class SchedulingInPast(SimulationError):
    """An event was scheduled at a time earlier than the current clock."""

    def __init__(self, now: float, when: float) -> None:
        super().__init__(f"cannot schedule at t={when} (now t={now})")
        self.now = now
        self.when = when


class AlreadyTriggered(SimulationError):
    """An event was triggered (succeeded or failed) more than once."""


class DeadProcess(SimulationError):
    """An operation targeted a process that has already terminated."""


class Interrupted(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    Not a :class:`SimulationError`: it is expected control flow and user
    processes are allowed (encouraged) to catch it.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class StopProcess(Exception):
    """Internal marker used to terminate a process from within a callback."""
