"""Deterministic discrete-event simulation kernel (time in microseconds).

Public surface::

    sim = Simulator()
    def proc(sim):
        yield sim.timeout(5.0)
        return "done"
    p = sim.spawn(proc(sim))
    sim.run(until=p)   # -> "done"
"""

from .core import LAZY, NORMAL, URGENT, Event, Process, Simulator, Timeout
from .errors import (
    AlreadyTriggered,
    DeadProcess,
    Interrupted,
    SchedulingInPast,
    SimulationError,
)
from .fluid import BulkFlow, FluidChannel
from .resources import Mutex, Resource, Store, TokenBucket, WaitQueue
from .stats import Counter, StatsRegistry, Tally, TimeSeries
from .sync import all_of, any_of

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "URGENT",
    "NORMAL",
    "LAZY",
    "Resource",
    "Mutex",
    "Store",
    "WaitQueue",
    "TokenBucket",
    "all_of",
    "any_of",
    "FluidChannel",
    "BulkFlow",
    "Counter",
    "Tally",
    "TimeSeries",
    "StatsRegistry",
    "SimulationError",
    "SchedulingInPast",
    "AlreadyTriggered",
    "DeadProcess",
    "Interrupted",
]
