"""Generator-based discrete-event simulation kernel.

This module is the heart of the reproduction: every hardware and kernel
component (HCA, disk, kswapd, HPBD client/server threads, ...) is a
*process* — a Python generator that yields :class:`Event` objects and is
resumed when they fire.  The design follows the classic SimPy shape but is
purpose-built and dependency-free:

* time is a ``float`` in **microseconds**;
* simultaneous events fire in a deterministic ``(time, priority, seq)``
  total order, whichever scheduler backs the queue;
* events carry either a *value* (success) or an *exception* (failure) to
  the processes waiting on them;
* processes are themselves events — they trigger when the generator
  returns, which makes ``yield other_process`` a join.

Scheduler tiers (new in PR 7; select with ``Simulator(scheduler=...)`` or
the ``REPRO_SCHEDULER`` env var, default ``"wheel"``):

* ``"wheel"`` — a tiered **calendar queue**: a small sorted *current
  bucket* heap for imminent events, ``_NBUCKETS`` unsorted wheel buckets
  of ``_W`` µs each for the short-horizon timeout churn that dominates
  HPBD/NBD retransmit guards (O(1) insert, lazy per-advance cascade
  instead of a heap sift), and an *overflow heap* for events beyond the
  wheel horizon.  ``_W`` is a power of two so bucket indexing
  (``int(when * _INV_W)``) is exact in binary floating point and the
  bucket partition is deterministic.
* ``"heap"`` — the PR 2 binary heap, kept as the equivalence baseline.

Both modes share three fast paths that sit *in front of* the structure,
so they cannot change the firing order:

* the **solo slot**: when the queue is otherwise empty the single pending
  entry is parked in ``_solo`` and dispatched without touching any
  structure — pure timeout churn (one process sleeping in a loop) never
  pays for the calendar at all;
* the **owner slot**: a process that is the *sole* waiter of an event is
  stored in ``event.owner`` instead of appending a bound-method callback,
  and the drain loop resumes its generator inline (no bound-method
  allocation, no list append/iterate, no ``_resume`` frame);
* **lazy-cancellation tombstones**: :meth:`Event.cancel` just sets a
  flag; the drain loop discards tombstoned entries when they surface, so
  cancelling a retransmit guard is O(1) and never touches the structure.

Allocation notes carried over from PR 2: callbacks are plain lists,
events use ``__slots__``, and the loop keeps free lists of ``Timeout``
and plain ``Event`` objects, recycling an event after its callbacks have
run **only when the loop holds the last reference** (checked with
``sys.getrefcount``), so any event a process or test still points at
keeps its triggered state forever.  Queue entries are slim
``(time, key, event)`` 3-tuples where ``key`` folds the priority into
the high bits of the sequence number.
"""

from __future__ import annotations

import heapq
import os
import sys
from collections.abc import Callable, Generator, Iterable
from typing import Any

from ..obs.monitors import MonitorHub
from ..obs.trace import NULL_TRACE, TraceRecorder
from .errors import (
    AlreadyTriggered,
    DeadProcess,
    Interrupted,
    SchedulingInPast,
    SimulationError,
    StopProcess,
)

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Simulator",
    "ProcessGen",
    "NORMAL",
    "URGENT",
    "LAZY",
]

#: Event priorities — lower fires first among simultaneous events.
URGENT = 0
NORMAL = 1
LAZY = 2

#: The type a process body must have.
ProcessGen = Generator["Event", Any, Any]

_PENDING = object()

#: Heap keys are ``(priority << _PRIO_SHIFT) + seq`` — priority dominates,
#: then FIFO insertion order.  2**52 events per run is far beyond reach.
_PRIO_SHIFT = 52
_URGENT_BASE = URGENT << _PRIO_SHIFT
_NORMAL_BASE = NORMAL << _PRIO_SHIFT
#: ``run(until=<float>)`` parks a sentinel at the deadline with a key
#: above every real priority so all real events at that instant fire
#: first.
_MARKER_BASE = 3 << _PRIO_SHIFT

#: Free-list cap: recycling is a win only while the pool stays cache-warm.
_POOL_MAX = 4096

#: Calendar-queue geometry.  ``_W`` must be a power of two so
#: ``int(when * _INV_W)`` is an exact binary operation; 8 µs × 512
#: buckets gives a 4096 µs horizon that covers serialization delays,
#: RTTs and retransmit guards, with the overflow heap absorbing the rest.
_W = 8.0
_INV_W = 0.125
_NBUCKETS = 512

_getrefcount = sys.getrefcount
_heappush = heapq.heappush
_heappop = heapq.heappop
_heapify = heapq.heapify


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it is *triggered* exactly once, either with
    :meth:`succeed` (carrying a value) or :meth:`fail` (carrying an
    exception).  Processes wait on an event by ``yield``-ing it; plain
    callables can also be attached via :attr:`callbacks`.
    """

    __slots__ = (
        "sim",
        "callbacks",
        "_value",
        "_ok",
        "name",
        "abandoned",
        "owner",
        "cancelled",
    )

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        #: callbacks run (in order) when the event fires; each receives
        #: the event itself.  ``None`` once processed.
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        #: set when the last process waiting on this event was
        #: interrupted away — queues treat such waits as cancelled and
        #: must not grant resources to them (see resources.py).
        self.abandoned = False
        #: the *sole-waiter* fast path: the first process to wait on a
        #: callback-free event is stored here instead of appending a
        #: bound-method callback; the drain loop resumes it inline.  It
        #: always fires before :attr:`callbacks`, preserving waiter
        #: arrival order.
        self.owner: Process | None = None
        #: lazy-cancellation tombstone — see :meth:`cancel`.
        self.cancelled = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire (or has fired)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception carried by the event."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} not yet triggered")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Schedule the event to fire *now* with ``value``."""
        if self._value is not _PENDING:
            raise AlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        sim._seq += 1
        sim._post(sim.now, (priority << _PRIO_SHIFT) + sim._seq, self)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Schedule the event to fire *now*, raising ``exc`` in waiters."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._value is not _PENDING:
            raise AlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        sim = self.sim
        sim._seq += 1
        sim._post(sim.now, (priority << _PRIO_SHIFT) + sim._seq, self)
        return self

    def trigger(self, other: "Event") -> None:
        """Mirror another (triggered) event's outcome onto this one."""
        if other._ok:
            self.succeed(other._value)
        else:
            self.fail(other._value)

    def cancel(self) -> None:
        """Tombstone the event: it will be silently discarded, not fired.

        O(1) and structure-free: the entry stays wherever it sits in the
        calendar/heap and is dropped (and recycled) when it surfaces in
        the drain loop, without advancing the clock or running callbacks.
        Cancelling an already-processed event is a no-op, so the
        ``any_of`` loser-timer pattern needs no state check at the call
        site.  An event a process is blocked on cannot be cancelled —
        that would strand the generator forever.
        """
        if self.owner is not None:
            raise SimulationError(
                f"cannot cancel {self!r}: a process is waiting on it"
            )
        if self.callbacks is None:
            return
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "pending"
            if self._value is _PENDING
            else ("ok" if self._ok else "failed")
        )
        label = self.name or type(self).__name__
        return f"<{label} {state} at t={self.sim.now:.3f}>"


class Timeout(Event):
    """An event that fires after a fixed delay.  Created pre-triggered.

    The name is the constant ``"timeout"`` (not an interpolated string):
    formatting the delay per instance dominated the allocation cost of
    the hottest path in the whole kernel.  ``delay`` carries the number.
    """

    __slots__ = ("delay",)

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: Any = None,
        priority: int = NORMAL,
    ) -> None:
        if delay < 0:
            raise SchedulingInPast(sim.now, sim.now + delay)
        super().__init__(sim, name="timeout")
        self.delay = delay
        self._ok = True
        self._value = value
        sim._seq += 1
        sim._post(sim.now + delay, (priority << _PRIO_SHIFT) + sim._seq, self)


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The generator yields :class:`Event` instances.  When a yielded event
    succeeds, the generator is resumed with ``event.value``; when it
    fails, the exception is thrown into the generator.  ``return value``
    inside the generator becomes the process's own event value, so other
    processes can ``result = yield proc``.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        if not hasattr(gen, "throw"):
            raise TypeError(
                f"Process body must be a generator, got {type(gen).__name__}"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        #: the event this process is currently blocked on (None if ready)
        self._waiting_on: Event | None = None
        # Kick-off: an urgent pre-triggered event owned by this process
        # (drawn from the free list when one is available); the drain
        # loop's owner path performs the first resume.
        init = sim._internal_event("init", True, None)
        init.owner = self
        sim._seq += 1
        sim._post(sim.now, _URGENT_BASE + sim._seq, init)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time.

        A process cannot interrupt itself and a dead process cannot be
        interrupted.  The interrupt detaches the process from whatever
        event it was waiting on (the event itself is unaffected and may
        still fire for other waiters).
        """
        if not self.is_alive:
            raise DeadProcess(f"{self.name} already terminated")
        if self.sim.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            if waiting.owner is self:
                waiting.owner = None
            else:
                try:
                    waiting.callbacks.remove(self._resume)
                except ValueError:
                    pass
            if waiting.owner is None and not waiting.callbacks:
                # Nobody is listening any more: let resource queues
                # know this wait is dead so they skip it.
                waiting.abandoned = True
        self._waiting_on = None
        # Deliver via a dedicated urgent event so ordering stays in the queue.
        sim = self.sim
        evt = sim._internal_event(
            "interrupt", False, Interrupted(cause), self._deliver_interrupt
        )
        sim._seq += 1
        sim._post(sim.now, _URGENT_BASE + sim._seq, evt)

    # -- internals -------------------------------------------------------

    def _deliver_interrupt(self, evt: Event) -> None:
        if not self.is_alive:  # died before delivery; drop silently
            return
        self._step(throw=evt._value)

    def _resume(self, evt: Event) -> None:
        self._waiting_on = None
        if evt._ok:
            self._step(send=evt._value)
        else:
            self._step(throw=evt._value)

    def _step(self, send: Any = None, throw: BaseException | None = None) -> None:
        sim = self.sim
        prev, sim.active_process = sim.active_process, self
        try:
            if throw is not None:
                target = self._gen.throw(throw)
            else:
                target = self._gen.send(send)
        except StopIteration as stop:
            sim.active_process = prev
            self.succeed(stop.value)
            return
        except StopProcess:
            sim.active_process = prev
            self.succeed(None)
            return
        except BaseException as exc:
            sim.active_process = prev
            if sim.strict:
                self.fail(exc)
                raise
            self.fail(exc)
            return
        finally:
            sim.active_process = prev
        self._arm(target)

    def _terminate(self, exc: BaseException) -> None:
        """Finish the process after its generator raised ``exc``.

        Called from the drain loop's inline-resume path (the equivalent
        ``except`` arms of :meth:`_step`); re-raises in strict mode with
        the original traceback.
        """
        if isinstance(exc, StopIteration):
            self.succeed(exc.value)
        elif isinstance(exc, StopProcess):
            self.succeed(None)
        else:
            self.fail(exc)
            if self.sim.strict:
                raise

    def _arm(self, target: Any) -> None:
        """Block this process on ``target`` (the event it just yielded)."""
        sim = self.sim
        if not isinstance(target, Event):
            err = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            self._gen.close()
            self.fail(err)
            if sim.strict:
                raise err
            return
        if target.callbacks is None:
            # Already processed: resume immediately-but-not-recursively via
            # an urgent zero-delay relay event to keep the stack flat.  The
            # relay never escapes this module, so it is drawn from (and
            # returns to) the free list; the owner slot carries the waiter.
            relay = sim._internal_event("relay", target._ok, target._value)
            relay.owner = self
            sim._seq += 1
            sim._post(sim.now, _URGENT_BASE + sim._seq, relay)
            self._waiting_on = relay
        elif target.owner is None and not target.callbacks:
            if target.cancelled:
                raise SimulationError(
                    f"process {self.name!r} yielded cancelled event {target!r}"
                )
            target.owner = self
            self._waiting_on = target
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Simulator:
    """The event loop: a clock plus a tiered calendar queue of events.

    ``strict`` (default True) re-raises exceptions escaping process
    bodies, which turns silent process deaths into test failures — per
    the guides' "make it work reliably" rule.

    ``scheduler`` selects the queue backend: ``"wheel"`` (tiered
    calendar queue, the default) or ``"heap"`` (the PR 2 binary heap,
    kept as the equivalence baseline).  ``None`` defers to the
    ``REPRO_SCHEDULER`` environment variable, so sweep workers and the
    equivalence harness can switch modes without plumbing.  Both modes
    fire events in the identical ``(time, priority, seq)`` total order.
    """

    def __init__(self, strict: bool = True, scheduler: str | None = None) -> None:
        self.now: float = 0.0
        self.strict = strict
        self.active_process: Process | None = None
        self._seq = 0
        self._event_count = 0
        #: the solo slot: the single pending entry when the rest of the
        #: queue is empty.  Every push goes through :meth:`_post`, which
        #: demotes the slot into the structure the moment a second entry
        #: arrives, so ordering is unaffected.
        self._solo: tuple[float, int, Event] | None = None
        #: entries living in the backing structure (everything but solo).
        self._nstruct = 0
        # -- heap backend ------------------------------------------------
        self._heap: list[tuple[float, int, Event]] = []
        # -- wheel backend -----------------------------------------------
        #: sorted current bucket: every queued entry with when < _cur_end.
        self._cur: list[tuple[float, int, Event]] = []
        #: unsorted wheel buckets for [_cur_end, _horizon), indexed by
        #: bucket ordinal modulo _NBUCKETS.
        self._buckets: list[list[tuple[float, int, Event]]] = [
            [] for _ in range(_NBUCKETS)
        ]
        self._nbucketed = 0
        #: overflow heap for entries at or beyond the wheel horizon.
        self._far: list[tuple[float, int, Event]] = []
        #: current bucket ordinal; bucket ``g`` covers [g*_W, (g+1)*_W).
        self._gb = 0
        self._cur_end = _W
        self._horizon = _NBUCKETS * _W
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SCHEDULER", "wheel")
        if scheduler == "wheel":
            self._insert = self._wheel_insert
            self._pop_struct = self._wheel_pop
        elif scheduler == "heap":
            self._insert = self._heap_insert
            self._pop_struct = self._heap_pop
        else:
            raise ValueError(
                f"unknown scheduler {scheduler!r} (expected 'wheel' or 'heap')"
            )
        self.scheduler = scheduler
        #: free lists of recycled one-shot events (exact types only);
        #: repopulated by the run loop when it held the last reference.
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []
        #: cross-layer span recorder (repro.obs); the shared null
        #: recorder by default, so instrument sites cost one attribute
        #: load and an ``enabled`` check unless tracing is switched on.
        self.trace = NULL_TRACE
        #: runtime invariant monitors (repro.obs.monitors); components
        #: report conservation checks here as the simulation runs.
        self.monitors = MonitorHub(self)

    def enable_tracing(self) -> TraceRecorder:
        """Attach (or return) a live TraceRecorder bound to this clock."""
        if not self.trace.enabled:
            self.trace = TraceRecorder(clock=lambda: self.now)
        return self.trace

    # -- queue backends ---------------------------------------------------

    def _post(self, when: float, key: int, event: Event) -> None:
        """Queue an entry: solo slot if the queue is empty, else structure."""
        if self._solo is None and self._nstruct == 0:
            self._solo = (when, key, event)
        else:
            self._push_full(when, key, event)

    def _push_full(self, when: float, key: int, event: Event) -> None:
        insert = self._insert
        solo = self._solo
        if solo is not None:
            self._solo = None
            insert(solo)
            self._nstruct += 1
        insert((when, key, event))
        self._nstruct += 1

    def _heap_insert(self, entry: tuple[float, int, Event]) -> None:
        _heappush(self._heap, entry)

    def _heap_pop(self) -> "tuple[float, int, Event] | None":
        heap = self._heap
        if not heap:
            return None
        self._nstruct -= 1
        return _heappop(heap)

    def _wheel_insert(self, entry: tuple[float, int, Event]) -> None:
        when = entry[0]
        if when < self._cur_end:
            _heappush(self._cur, entry)
        elif when < self._horizon:
            self._buckets[int(when * _INV_W) % _NBUCKETS].append(entry)
            self._nbucketed += 1
        else:
            _heappush(self._far, entry)

    def _wheel_pop(self) -> "tuple[float, int, Event] | None":
        cur = self._cur
        if cur:
            self._nstruct -= 1
            return _heappop(cur)
        if self._nstruct == 0:
            return None
        # Advance the wheel until the current bucket has an entry.  Each
        # advance refills _cur from the next bucket and cascades one
        # bucket-width of the overflow heap in; when the wheel itself is
        # empty the spin guard jumps straight to the overflow head
        # instead of stepping 512 times per 4 ms of idle simulated time.
        buckets = self._buckets
        far = self._far
        nb = self._nbucketed
        while not cur:
            if nb == 0 and not far:  # pragma: no cover - count mismatch guard
                self._nbucketed = 0
                return None
            gb = self._gb + 1
            if nb == 0:
                head_ordinal = int(far[0][0] * _INV_W)
                if head_ordinal > gb:
                    gb = head_ordinal
            self._gb = gb
            cur_end = (gb + 1) * _W
            self._cur_end = cur_end
            horizon = (gb + _NBUCKETS) * _W
            self._horizon = horizon
            slot = gb % _NBUCKETS
            filled = buckets[slot]
            if filled:
                buckets[slot] = []
                nb -= len(filled)
                cur.extend(filled)
            while far and far[0][0] < horizon:
                entry = _heappop(far)
                when = entry[0]
                if when < cur_end:
                    cur.append(entry)
                else:
                    buckets[int(when * _INV_W) % _NBUCKETS].append(entry)
                    nb += 1
            if cur:
                _heapify(cur)
        self._nbucketed = nb
        self._nstruct -= 1
        return _heappop(cur)

    # -- factory helpers -------------------------------------------------

    # Pool invariants (kept by every recycle site so the reinit paths
    # below can skip stores): a pooled event has ``callbacks == []``
    # (the original list, cleared and restored — no per-reuse alloc),
    # ``owner is None``, ``cancelled is False``; a pooled Timeout
    # additionally has ``_ok is True`` (timeouts never fail) and its
    # stale ``abandoned`` flag is never read (only resource queues read
    # ``abandoned``, and only on their own plain waiter events).

    def event(self, name: str = "") -> Event:
        pool = self._event_pool
        if pool:
            evt = pool.pop()
            evt._value = _PENDING
            evt._ok = None
            evt.abandoned = False
            evt.name = name
            return evt
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool and delay >= 0:
            to = pool.pop()
            to._value = value
            to.delay = delay
            self._seq += 1
            key = _NORMAL_BASE + self._seq
            when = self.now + delay
            if self._solo is None and self._nstruct == 0:
                self._solo = (when, key, to)
            else:
                self._push_full(when, key, to)
            return to
        return Timeout(self, delay, value)

    def _internal_event(
        self,
        name: str,
        ok: bool,
        value: Any,
        callback: "Callable[[Event], None] | None" = None,
    ) -> Event:
        """A pre-triggered internal event (init/relay/interrupt), pooled.

        The caller is responsible for queueing it (and for setting
        ``owner`` when the waiter is a process rather than a callback).
        """
        pool = self._event_pool
        if pool:
            evt = pool.pop()
            evt.abandoned = False
            evt.name = name
            if callback is not None:
                evt.callbacks.append(callback)
        else:
            evt = Event(self, name)
            if callback is not None:
                evt.callbacks.append(callback)
        evt._ok = ok
        evt._value = value
        return evt

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a new process from generator ``gen``."""
        return Process(self, gen, name)

    # `process` alias mirrors SimPy naming for familiarity.
    process = spawn

    # -- scheduling -------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            raise SchedulingInPast(self.now, self.now + delay)
        self._seq += 1
        self._post(
            self.now + delay, (priority << _PRIO_SHIFT) + self._seq, event
        )

    def schedule_call(
        self, delay: float, fn: Callable[[], None], priority: int = NORMAL
    ) -> Event:
        """Run a plain callable after ``delay`` (no process needed)."""
        evt = self.event("call")
        evt.callbacks.append(lambda _e: fn())
        evt._ok = True
        evt._value = None
        self._enqueue(evt, delay, priority)
        return evt

    # -- running ----------------------------------------------------------

    @property
    def events_processed(self) -> int:
        return self._event_count

    def peek(self) -> float:
        """Time of the next *live* event, or ``inf`` if the queue is empty.

        Rarely called (tests and diagnostics), so the wheel variant may
        scan its buckets rather than keep them sorted.
        """
        best = float("inf")
        solo = self._solo
        if solo is not None and not solo[2].cancelled:
            best = solo[0]
        for entry in self._heap:
            if entry[0] < best and not entry[2].cancelled:
                best = entry[0]
        for entry in self._cur:
            if entry[0] < best and not entry[2].cancelled:
                best = entry[0]
        for bucket in self._buckets:
            for entry in bucket:
                if entry[0] < best and not entry[2].cancelled:
                    best = entry[0]
        for entry in self._far:
            if entry[0] < best and not entry[2].cancelled:
                best = entry[0]
        return best

    def _pop_next(self) -> "tuple[float, int, Event] | None":
        solo = self._solo
        if solo is not None:
            self._solo = None
            return solo
        return self._pop_struct()

    def step(self) -> None:
        """Fire the single next live event (skipping tombstones)."""
        while True:
            entry = self._pop_next()
            if entry is None:
                raise IndexError("step from an empty queue")
            when, _key, event = entry
            if event.cancelled:
                self._discard(event)
                continue
            if when < self.now:  # pragma: no cover - queue invariant
                raise SchedulingInPast(self.now, when)
            self.now = when
            self._fire(event)
            self._recycle(event)
            return

    def _fire(self, event: Event) -> None:
        """Run an event's waiters: owner first, then callbacks, in order."""
        callbacks = event.callbacks
        event.callbacks = None
        self._event_count += 1
        owner = event.owner
        if owner is not None:
            event.owner = None
            owner._waiting_on = None
            if event._ok:
                owner._step(send=event._value)
            else:
                owner._step(throw=event._value)
        if callbacks:
            for cb in callbacks:
                cb(event)

    def _discard(self, event: Event) -> None:
        """Drop a tombstoned entry: mark processed, recycle, don't count."""
        event.callbacks = None
        event.owner = None
        event.cancelled = False
        self._recycle(event)

    def _recycle(self, event: Event) -> None:
        """Return a processed event to its free list — only if the run loop
        holds the last reference, so events user code still points at are
        never reused under it.  At the check, exactly three references
        exist for a loop-only event: the caller's local, this function's
        parameter, and ``getrefcount``'s own argument slot."""
        cls = event.__class__
        if cls is Timeout:
            pool = self._timeout_pool
        elif cls is Event:
            pool = self._event_pool
        else:
            return
        if _getrefcount(event) == 3 and len(pool) < _POOL_MAX:
            event.callbacks = []
            pool.append(event)

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        * ``until=None`` — run to exhaustion.
        * ``until=<float>`` — advance the clock exactly to that time.
        * ``until=<Event>`` — run until that event is processed and return
          its value (raising it if the event failed).
        """
        if until is None:
            self._drain(None)
            return None

        if isinstance(until, Event):
            if until.processed:
                if not until._ok:
                    raise until._value
                return until._value
            self._drain(until)
            if until.callbacks is not None:
                raise SimulationError(
                    f"simulation ran dry before {until!r} triggered"
                )
            if not until._ok:
                raise until._value
            return until._value

        deadline = float(until)
        if deadline < self.now:
            raise SchedulingInPast(self.now, deadline)
        # A sentinel with a key above every real priority: all real
        # events at the deadline instant fire first, then the sentinel
        # stops the drain.  It is built directly (not pooled) so the
        # free lists never see it, and un-counted below.
        marker = Event(self, "deadline")
        marker._ok = True
        marker._value = None
        self._seq += 1
        self._post(deadline, _MARKER_BASE + self._seq, marker)
        self._drain(marker)
        self._event_count -= 1
        self.now = deadline
        return None

    def _drain(self, until: "Event | None") -> None:
        """The inner event loop: pop → resume owner / fire callbacks → recycle.

        Stops when the queue empties or ``until`` has been processed.
        The body is ``step()`` with the solo slot, the owner-slot
        generator resume, and pooling all inlined: one method call per
        event is measurable at tens of millions of events per run.
        """
        getrc = _getrefcount
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        pop_struct = self._pop_struct
        count = 0
        try:
            while True:
                entry = self._solo
                if entry is not None:
                    self._solo = None
                    when, _key, event = entry
                    entry = None
                else:
                    entry = pop_struct()
                    if entry is None:
                        return
                    when, _key, event = entry
                    entry = None
                if event.cancelled:
                    # Tombstone: drop without firing, counting, or
                    # advancing the clock; recycle when unreferenced.
                    cbs = event.callbacks
                    event.callbacks = None
                    event.owner = None
                    event.cancelled = False
                    cls = event.__class__
                    if cls is Timeout:
                        if getrc(event) == 2 and len(timeout_pool) < _POOL_MAX:
                            if cbs:
                                cbs.clear()
                            event.callbacks = cbs
                            timeout_pool.append(event)
                    elif cls is Event:
                        if getrc(event) == 2 and len(event_pool) < _POOL_MAX:
                            if cbs:
                                cbs.clear()
                            event.callbacks = cbs
                            event_pool.append(event)
                    continue
                self.now = when
                callbacks = event.callbacks
                event.callbacks = None
                count += 1
                owner = event.owner
                if owner is not None:
                    # Inline sole-waiter resume: the body of
                    # Process._resume/_step minus the frames and the
                    # bound-method allocation.
                    event.owner = None
                    owner._waiting_on = None
                    gen = owner._gen
                    prev = self.active_process
                    self.active_process = owner
                    try:
                        if event._ok:
                            target = gen.send(event._value)
                        else:
                            target = gen.throw(event._value)
                        # Fused solo spin: while the process keeps
                        # yielding fresh solo timeouts (the pure-churn
                        # shape: one sleeper, empty queue), consume them
                        # here without re-entering the outer loop or
                        # touching owner/_waiting_on — nothing else can
                        # run between two solo events, so that
                        # bookkeeping is unobservable.  Entered only
                        # when the outer event had no callbacks, so no
                        # waiter is delayed past its firing time.
                        while (
                            target.__class__ is Timeout
                            and self._nstruct == 0
                            and not callbacks
                            and (solo := self._solo) is not None
                            and solo[2] is target
                            and not target.cancelled
                            and not target.callbacks
                            and target is not until
                        ):
                            self._solo = None
                            self.now = solo[0]
                            solo = None
                            spare = target.callbacks
                            target.callbacks = None
                            count += 1
                            prev_evt = event
                            event = target
                            target = gen.send(event._value)
                            # Recycle the event consumed one spin ago,
                            # handing it the empty callback list of the
                            # one just consumed (lists are conserved
                            # around the spin, so reuse skips allocs).
                            if prev_evt.__class__ is Timeout:
                                if (
                                    getrc(prev_evt) == 2
                                    and len(timeout_pool) < _POOL_MAX
                                ):
                                    prev_evt.callbacks = spare
                                    timeout_pool.append(prev_evt)
                            prev_evt = None
                            spare = None
                    except BaseException as exc:
                        self.active_process = prev
                        owner._terminate(exc)
                    else:
                        self.active_process = prev
                        if target.__class__ is Timeout:
                            tcb = target.callbacks
                            if (
                                tcb is not None
                                and not tcb
                                and target.owner is None
                                and not target.cancelled
                            ):
                                # Fresh timeout, no other waiters: take
                                # the owner slot without touching _arm.
                                target.owner = owner
                                owner._waiting_on = target
                            else:
                                owner._arm(target)
                        else:
                            owner._arm(target)
                if callbacks:
                    for cb in callbacks:
                        cb(event)
                if event is until:
                    return
                # Inline recycle: two references mean only the loop
                # local (+ getrefcount's argument slot) is left.  The
                # (cleared) callback list is handed back so the next
                # reuse skips the alloc.
                cls = event.__class__
                if cls is Timeout:
                    if getrc(event) == 2 and len(timeout_pool) < _POOL_MAX:
                        if callbacks:
                            callbacks.clear()
                        event.callbacks = callbacks
                        timeout_pool.append(event)
                elif cls is Event:
                    if getrc(event) == 2 and len(event_pool) < _POOL_MAX:
                        if callbacks:
                            callbacks.clear()
                        event.callbacks = callbacks
                        event_pool.append(event)
        finally:
            self._event_count += count

    def run_all(self, procs: Iterable[Process]) -> list[Any]:
        """Run until every process in ``procs`` has finished."""
        out = []
        for proc in procs:
            out.append(self.run(until=proc))
        return out
