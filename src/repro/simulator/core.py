"""Generator-based discrete-event simulation kernel.

This module is the heart of the reproduction: every hardware and kernel
component (HCA, disk, kswapd, HPBD client/server threads, ...) is a
*process* — a Python generator that yields :class:`Event` objects and is
resumed when they fire.  The design follows the classic SimPy shape but is
purpose-built and dependency-free:

* time is a ``float`` in **microseconds**;
* the event queue is a binary heap keyed on ``(time, priority, seq)`` so
  simultaneous events fire in a deterministic order;
* events carry either a *value* (success) or an *exception* (failure) to
  the processes waiting on them;
* processes are themselves events — they trigger when the generator
  returns, which makes ``yield other_process`` a join.

Hot-path notes (see the HPC guides): callbacks are stored in plain lists,
events use ``__slots__``, and the run loop avoids attribute lookups in the
inner loop.  The simulated workloads are written so that *resident* page
touches never enter this kernel at all — only misses and I/O become
events.

Allocation is the other host-side cost: a ``scale=1`` run retires tens of
millions of events, and the classic generator-DES shape allocates a fresh
``Timeout`` (or internal relay event) per yield.  Following the batched /
pooled event idiom of PR-SIM-style simulators, the loop keeps free lists
of ``Timeout`` and plain ``Event`` objects and recycles an event after
its callbacks have run **only when the loop holds the last reference**
(checked with ``sys.getrefcount``), so any event a process or test still
points at keeps its triggered state forever.  The heap entry is a slim
``(time, key, event)`` 3-tuple where ``key`` folds the priority into the
high bits of the sequence number, preserving the deterministic
``(time, priority, seq)`` total order with one less tuple slot to
compare.
"""

from __future__ import annotations

import heapq
import sys
from collections.abc import Callable, Generator, Iterable
from typing import Any

from ..obs.monitors import MonitorHub
from ..obs.trace import NULL_TRACE, TraceRecorder
from .errors import (
    AlreadyTriggered,
    DeadProcess,
    Interrupted,
    SchedulingInPast,
    SimulationError,
    StopProcess,
)

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Simulator",
    "ProcessGen",
    "NORMAL",
    "URGENT",
    "LAZY",
]

#: Event priorities — lower fires first among simultaneous events.
URGENT = 0
NORMAL = 1
LAZY = 2

#: The type a process body must have.
ProcessGen = Generator["Event", Any, Any]

_PENDING = object()

#: Heap keys are ``(priority << _PRIO_SHIFT) + seq`` — priority dominates,
#: then FIFO insertion order.  2**52 events per run is far beyond reach.
_PRIO_SHIFT = 52
_URGENT_BASE = URGENT << _PRIO_SHIFT
_NORMAL_BASE = NORMAL << _PRIO_SHIFT

#: Free-list cap: recycling is a win only while the pool stays cache-warm.
_POOL_MAX = 4096

_getrefcount = sys.getrefcount
_heappush = heapq.heappush
_heappop = heapq.heappop


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it is *triggered* exactly once, either with
    :meth:`succeed` (carrying a value) or :meth:`fail` (carrying an
    exception).  Processes wait on an event by ``yield``-ing it; plain
    callables can also be attached via :attr:`callbacks`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "name", "abandoned")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        #: callbacks run (in order) when the event fires; each receives
        #: the event itself.  ``None`` once processed.
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        #: set when the last process waiting on this event was
        #: interrupted away — queues treat such waits as cancelled and
        #: must not grant resources to them (see resources.py).
        self.abandoned = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire (or has fired)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception carried by the event."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} not yet triggered")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Schedule the event to fire *now* with ``value``."""
        if self._value is not _PENDING:
            raise AlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        sim._seq += 1
        _heappush(
            sim._heap, (sim.now, (priority << _PRIO_SHIFT) + sim._seq, self)
        )
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Schedule the event to fire *now*, raising ``exc`` in waiters."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._value is not _PENDING:
            raise AlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        sim = self.sim
        sim._seq += 1
        _heappush(
            sim._heap, (sim.now, (priority << _PRIO_SHIFT) + sim._seq, self)
        )
        return self

    def trigger(self, other: "Event") -> None:
        """Mirror another (triggered) event's outcome onto this one."""
        if other._ok:
            self.succeed(other._value)
        else:
            self.fail(other._value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "pending"
            if self._value is _PENDING
            else ("ok" if self._ok else "failed")
        )
        label = self.name or type(self).__name__
        return f"<{label} {state} at t={self.sim.now:.3f}>"


class Timeout(Event):
    """An event that fires after a fixed delay.  Created pre-triggered.

    The name is the constant ``"timeout"`` (not an interpolated string):
    formatting the delay per instance dominated the allocation cost of
    the hottest path in the whole kernel.  ``delay`` carries the number.
    """

    __slots__ = ("delay",)

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: Any = None,
        priority: int = NORMAL,
    ) -> None:
        if delay < 0:
            raise SchedulingInPast(sim.now, sim.now + delay)
        super().__init__(sim, name="timeout")
        self.delay = delay
        self._ok = True
        self._value = value
        sim._seq += 1
        _heappush(
            sim._heap,
            (sim.now + delay, (priority << _PRIO_SHIFT) + sim._seq, self),
        )


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The generator yields :class:`Event` instances.  When a yielded event
    succeeds, the generator is resumed with ``event.value``; when it
    fails, the exception is thrown into the generator.  ``return value``
    inside the generator becomes the process's own event value, so other
    processes can ``result = yield proc``.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        if not hasattr(gen, "throw"):
            raise TypeError(
                f"Process body must be a generator, got {type(gen).__name__}"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        #: the event this process is currently blocked on (None if ready)
        self._waiting_on: Event | None = None
        # Kick-off: an urgent pre-triggered event whose callback is the
        # first resume (drawn from the free list when one is available).
        init = sim._internal_event("init", True, None, self._resume)
        sim._seq += 1
        _heappush(sim._heap, (sim.now, _URGENT_BASE + sim._seq, init))

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time.

        A process cannot interrupt itself and a dead process cannot be
        interrupted.  The interrupt detaches the process from whatever
        event it was waiting on (the event itself is unaffected and may
        still fire for other waiters).
        """
        if not self.is_alive:
            raise DeadProcess(f"{self.name} already terminated")
        if self.sim.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
            if not waiting.callbacks:
                # Nobody is listening any more: let resource queues
                # know this wait is dead so they skip it.
                waiting.abandoned = True
        self._waiting_on = None
        # Deliver via a dedicated urgent event so ordering stays in the heap.
        sim = self.sim
        evt = sim._internal_event(
            "interrupt", False, Interrupted(cause), self._deliver_interrupt
        )
        sim._seq += 1
        _heappush(sim._heap, (sim.now, _URGENT_BASE + sim._seq, evt))

    # -- internals -------------------------------------------------------

    def _deliver_interrupt(self, evt: Event) -> None:
        if not self.is_alive:  # died before delivery; drop silently
            return
        self._step(throw=evt._value)

    def _resume(self, evt: Event) -> None:
        self._waiting_on = None
        if evt._ok:
            self._step(send=evt._value)
        else:
            self._step(throw=evt._value)

    def _step(self, send: Any = None, throw: BaseException | None = None) -> None:
        sim = self.sim
        prev, sim.active_process = sim.active_process, self
        try:
            if throw is not None:
                target = self._gen.throw(throw)
            else:
                target = self._gen.send(send)
        except StopIteration as stop:
            sim.active_process = prev
            self.succeed(stop.value)
            return
        except StopProcess:
            sim.active_process = prev
            self.succeed(None)
            return
        except BaseException as exc:
            sim.active_process = prev
            if sim.strict:
                self.fail(exc)
                raise
            self.fail(exc)
            return
        finally:
            sim.active_process = prev

        if not isinstance(target, Event):
            err = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            self._gen.close()
            self.fail(err)
            if sim.strict:
                raise err
            return
        if target.callbacks is None:
            # Already processed: resume immediately-but-not-recursively via
            # an urgent zero-delay relay event to keep the stack flat.  The
            # relay never escapes this module, so it is drawn from (and
            # returns to) the free list.
            relay = sim._internal_event(
                "relay", target._ok, target._value, self._resume
            )
            sim._seq += 1
            _heappush(sim._heap, (sim.now, _URGENT_BASE + sim._seq, relay))
            self._waiting_on = relay
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Simulator:
    """The event loop: a clock plus a heap of (time, priority, seq, event).

    ``strict`` (default True) re-raises exceptions escaping process
    bodies, which turns silent process deaths into test failures — per
    the guides' "make it work reliably" rule.
    """

    def __init__(self, strict: bool = True) -> None:
        self.now: float = 0.0
        self.strict = strict
        self.active_process: Process | None = None
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._event_count = 0
        #: free lists of recycled one-shot events (exact types only);
        #: repopulated by the run loop when it held the last reference.
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []
        #: cross-layer span recorder (repro.obs); the shared null
        #: recorder by default, so instrument sites cost one attribute
        #: load and an ``enabled`` check unless tracing is switched on.
        self.trace = NULL_TRACE
        #: runtime invariant monitors (repro.obs.monitors); components
        #: report conservation checks here as the simulation runs.
        self.monitors = MonitorHub(self)

    def enable_tracing(self) -> TraceRecorder:
        """Attach (or return) a live TraceRecorder bound to this clock."""
        if not self.trace.enabled:
            self.trace = TraceRecorder(clock=lambda: self.now)
        return self.trace

    # -- factory helpers -------------------------------------------------

    def event(self, name: str = "") -> Event:
        pool = self._event_pool
        if pool:
            evt = pool.pop()
            evt.callbacks = []
            evt._value = _PENDING
            evt._ok = None
            evt.abandoned = False
            evt.name = name
            return evt
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool and delay >= 0:
            to = pool.pop()
            to.callbacks = []
            to._ok = True
            to._value = value
            to.abandoned = False
            to.delay = delay
            self._seq += 1
            _heappush(
                self._heap, (self.now + delay, _NORMAL_BASE + self._seq, to)
            )
            return to
        return Timeout(self, delay, value)

    def _internal_event(
        self, name: str, ok: bool, value: Any, callback: Callable[[Event], None]
    ) -> Event:
        """A pre-triggered internal event (init/relay/interrupt), pooled.

        The caller is responsible for pushing it onto the heap.
        """
        pool = self._event_pool
        if pool:
            evt = pool.pop()
            evt.callbacks = [callback]
            evt.abandoned = False
            evt.name = name
        else:
            evt = Event(self, name)
            evt.callbacks.append(callback)
        evt._ok = ok
        evt._value = value
        return evt

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a new process from generator ``gen``."""
        return Process(self, gen, name)

    # `process` alias mirrors SimPy naming for familiarity.
    process = spawn

    # -- scheduling -------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            raise SchedulingInPast(self.now, self.now + delay)
        self._seq += 1
        _heappush(
            self._heap,
            (self.now + delay, (priority << _PRIO_SHIFT) + self._seq, event),
        )

    def schedule_call(
        self, delay: float, fn: Callable[[], None], priority: int = NORMAL
    ) -> Event:
        """Run a plain callable after ``delay`` (no process needed)."""
        evt = self.event("call")
        evt.callbacks.append(lambda _e: fn())
        evt._ok = True
        evt._value = None
        self._enqueue(evt, delay, priority)
        return evt

    # -- running ----------------------------------------------------------

    @property
    def events_processed(self) -> int:
        return self._event_count

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Fire the single next event."""
        when, _key, event = _heappop(self._heap)
        if when < self.now:  # pragma: no cover - heap invariant
            raise SchedulingInPast(self.now, when)
        self.now = when
        callbacks = event.callbacks
        event.callbacks = None
        self._event_count += 1
        for cb in callbacks:
            cb(event)
        self._recycle(event)

    def _recycle(self, event: Event) -> None:
        """Return a processed event to its free list — only if the run loop
        holds the last reference, so events user code still points at are
        never reused under it.  At the check, exactly three references
        exist for a loop-only event: the caller's local, this function's
        parameter, and ``getrefcount``'s own argument slot."""
        cls = event.__class__
        if cls is Timeout:
            pool = self._timeout_pool
        elif cls is Event:
            pool = self._event_pool
        else:
            return
        if _getrefcount(event) == 3 and len(pool) < _POOL_MAX:
            pool.append(event)

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        * ``until=None`` — run to exhaustion.
        * ``until=<float>`` — advance the clock exactly to that time.
        * ``until=<Event>`` — run until that event is processed and return
          its value (raising it if the event failed).
        """
        if until is None:
            self._drain(None)
            return None

        if isinstance(until, Event):
            if until.processed:
                if not until._ok:
                    raise until._value
                return until._value
            self._drain(until)
            if until.callbacks is not None:
                raise SimulationError(
                    f"simulation ran dry before {until!r} triggered"
                )
            if not until._ok:
                raise until._value
            return until._value

        deadline = float(until)
        if deadline < self.now:
            raise SchedulingInPast(self.now, deadline)
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        self.now = deadline
        return None

    def _drain(self, until: "Event | None") -> None:
        """The inner event loop: pop → fire callbacks → recycle.

        Stops when the heap empties or ``until`` has been processed.  The
        body is ``step()`` plus pooling, inlined: one method call per
        event is measurable at tens of millions of events per run.
        """
        heap = self._heap
        pop = _heappop
        getrc = _getrefcount
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        count = 0
        try:
            while heap:
                when, _key, event = pop(heap)
                self.now = when
                callbacks = event.callbacks
                event.callbacks = None
                count += 1
                for cb in callbacks:
                    cb(event)
                if event is until:
                    return
                # Inline recycle: two references mean only the loop
                # local (+ getrefcount's argument slot) is left.
                cls = event.__class__
                if cls is Timeout:
                    if getrc(event) == 2 and len(timeout_pool) < _POOL_MAX:
                        timeout_pool.append(event)
                elif cls is Event:
                    if getrc(event) == 2 and len(event_pool) < _POOL_MAX:
                        event_pool.append(event)
        finally:
            self._event_count += count

    def run_all(self, procs: Iterable[Process]) -> list[Any]:
        """Run until every process in ``procs`` has finished."""
        out = []
        for proc in procs:
            out.append(self.run(until=proc))
        return out
