"""NBD: the TCP network block device baseline (over GigE or IPoIB)."""

from .client import NBDClient
from .server import NBD_REPLY_BYTES, NBD_REQUEST_BYTES, NBDServer

__all__ = ["NBDClient", "NBDServer", "NBD_REQUEST_BYTES", "NBD_REPLY_BYTES"]
