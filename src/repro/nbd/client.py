"""NBD client: the in-kernel TCP block driver (Linux 2.4 behaviour).

As of Linux 2.4 "a single NBD device can only be served by a single
remote server" and the driver serializes: send request (header + data
for writes), block for the reply (header + data for reads), complete,
repeat.  No pipelining, no registration pool, no RDMA — the contrast
that isolates the transport in Figs. 5 and 7.
"""

from __future__ import annotations

from ..kernel.blockdev import READ, RequestQueue, WRITE
from ..kernel.node import Node
from ..net.fabrics import TCPParams
from ..simulator import SimulationError, Simulator, StatsRegistry, any_of
from ..tcpip import Connection, TCPStack, connect_tcp
from ..units import SECTOR_SIZE
from .server import NBD_REQUEST_BYTES, NBDServer

__all__ = ["NBDClient"]


class NBDClient:
    """One NBD device bound to exactly one server."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        server: NBDServer,
        total_bytes: int,
        tcp_params: TCPParams,
        name: str = "nbd0",
        stats: StatsRegistry | None = None,
        request_timeout_usec: float | None = None,
        max_retries: int = 2,
    ) -> None:
        if server.ramdisk.size < total_bytes:
            raise ValueError(
                f"server store {server.ramdisk.size} smaller than device "
                f"{total_bytes}"
            )
        self.sim = sim
        self.node = node
        self.server = server
        self.total_bytes = total_bytes
        self.name = name
        self.stats = stats if stats is not None else node.stats
        self.stack = TCPStack(
            sim,
            node.fabric,
            node.name,
            tcp_params,
            stats=self.stats,
            cpu_run=node.cpus.run,
        )
        self.queue = RequestQueue(
            sim,
            name=f"{name}.rq",
            capacity_sectors=total_bytes // SECTOR_SIZE,
            stats=self.stats,
        )
        self._conn: Connection | None = None
        self._t_req = self.stats.tally(f"{name}.request_usec")
        self.requests_sent = 0
        #: reliability (repro.faults): with a timeout set, an unanswered
        #: request is re-sent up to ``max_retries`` times before the
        #: driver gives up.  ``None`` (the default) keeps the 2.4
        #: block-forever behaviour.
        self.request_timeout_usec = request_timeout_usec
        self.max_retries = max_retries
        self._pending_recv = None
        self._c_retries = self.stats.counter(f"{name}.retries")
        self._c_stale = self.stats.counter(f"{name}.stale_replies")
        #: §3.3: "we note that although we are able to use NBD as a swap
        #: device in our experiment, deadlock is reported because of
        #: memory allocation in TCP networking."  The hazard: the TCP
        #: send path allocates memory while the VM is trying to FREE
        #: memory through this very device.  We count the occurrences
        #: (a swap-out sent while free frames sit at/below the min
        #: watermark) instead of deadlocking the simulation.
        self._c_deadlock_hazard = self.stats.counter(f"{name}.deadlock_hazards")

    def connect(self):
        """Establish the TCP session and start the driver; generator."""
        if self._conn is not None:
            raise SimulationError(f"{self.name} already connected")
        self._conn = yield from connect_tcp(
            self.stack, self.server.listener, name=self.name
        )
        self.sim.spawn(self._driver(), name=f"{self.name}.driver")

    def _driver(self):
        """Strictly serial request loop (the 2.4 nbd-client thread)."""
        sim = self.sim
        conn = self._conn
        while True:
            req = yield self.queue.next_request()
            t0 = sim.now
            self.requests_sent += 1
            offset = req.sector * SECTOR_SIZE
            if req.op == WRITE:
                frames = self.node.frames
                vmm = self.node.vmm
                blocked = (
                    frames.memory_waiters.waiting > 0
                    or vmm.wb_waiters.waiting > 0
                )
                if frames.below_min() or blocked:
                    # The 2.4 TCP-allocation-under-reclaim hazard: this
                    # send must allocate socket memory while a task sits
                    # blocked waiting for the very frames this write
                    # will free.
                    self._c_deadlock_hazard.add()
                token = ("nbd", req.sector, req.nbytes)
                nbytes = NBD_REQUEST_BYTES + req.nbytes
                payload = ("write", offset, req.nbytes, token)
            elif req.op == READ:
                nbytes = NBD_REQUEST_BYTES
                payload = ("read", offset, req.nbytes, None)
            else:  # pragma: no cover - block layer validates
                raise SimulationError(f"bad request op {req.op!r}")
            yield from conn.send(nbytes, payload=payload, req_id=req.req_id)
            if self.request_timeout_usec is None:
                reply = yield conn.recv()
            else:
                reply = yield from self._await_reply(conn, req, nbytes, payload)
            kind, _data = reply.payload
            if kind != "ack":
                raise SimulationError(f"{self.name}: unexpected reply {kind!r}")
            self._t_req.record(sim.now - t0)
            trace = sim.trace
            if trace.enabled:
                trace.complete(
                    self.name, "driver", "tcp_rtt", "nbd.rtt",
                    t0, sim.now,
                    req_id=req.req_id, op=req.op, nbytes=req.nbytes,
                )
            self.queue.complete(req)

    def _await_reply(self, conn: Connection, req, nbytes: int, payload):
        """Reply wait with timeout + bounded resend; generator.

        One receive is kept pending across timeouts (re-issuing the
        recv would orphan a message); replies are matched by ``req_id``
        so an answer to an earlier, given-up-on send is discarded as
        stale rather than mistaken for the current one.

        The guard timer is tombstoned (:meth:`~repro.simulator.Event.cancel`)
        when the reply wins the race, so a healthy run never pays for
        its dead timers surfacing through the scheduler.
        """
        sim = self.sim
        attempts = 0
        while True:
            if self._pending_recv is None:
                self._pending_recv = conn.recv()
            timer = sim.timeout(self.request_timeout_usec)
            idx, value = yield any_of(sim, [self._pending_recv, timer])
            if idx == 1:  # timed out
                attempts += 1
                if attempts > self.max_retries:
                    raise SimulationError(
                        f"{self.name}: request {req.req_id} timed out after "
                        f"{attempts - 1} retries"
                    )
                self._c_retries.add()
                if sim.trace.enabled:
                    sim.trace.instant(
                        self.name, "driver", "resend",
                        req_id=req.req_id, attempt=attempts,
                    )
                yield from conn.send(nbytes, payload=payload, req_id=req.req_id)
                continue
            timer.cancel()
            self._pending_recv = None
            reply = value
            if reply.req_id != req.req_id:
                # An ack for a send we already re-issued (the server
                # serves both copies) — or a pre-crash leftover.
                self._c_stale.add()
                continue
            return reply
