"""NBD server: the user-space TCP network block device daemon.

The baseline the paper compares against (§3.3): the stock Linux NBD
server, run over GigE and over IPoIB, backed by server memory (RamDisk)
so the comparison isolates the transport.  Serving is per-request
blocking — "NBD simply uses blocking mode transfer for each request and
response" (§6.2) — one request at a time per connection.
"""

from __future__ import annotations

from ..hpbd.ramdisk import RamDisk
from ..kernel.task import CPUSet
from ..net.fabrics import TCPParams
from ..net.link import Fabric
from ..simulator import SimulationError, Simulator, StatsRegistry
from ..tcpip import Connection, Listener, TCPStack

__all__ = ["NBDServer", "NBD_REQUEST_BYTES", "NBD_REPLY_BYTES"]

#: Linux NBD wire format: 28-byte request header, 16-byte reply header.
NBD_REQUEST_BYTES = 28
NBD_REPLY_BYTES = 16


class NBDServer:
    """One NBD export served over a simulated TCP stack."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        name: str,
        store_bytes: int,
        tcp_params: TCPParams,
        ncpus: int = 2,
        stats: StatsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.stats = stats if stats is not None else StatsRegistry()
        self.cpus = CPUSet(sim, ncpus, name=f"{name}.cpus")
        self.stack = TCPStack(
            sim, fabric, name, tcp_params, stats=self.stats, cpu_run=self.cpus.run
        )
        self.listener = Listener(self.stack, name=f"{name}.listen")
        self.ramdisk = RamDisk(store_bytes, name=f"{name}.ramdisk")
        self.requests_served = 0
        #: fault-injection state (repro.faults): a crashed daemon keeps
        #: its connections but silently eats every request.
        self.alive = True
        self.crashes = 0
        self._proc = sim.spawn(self._accept_loop(), name=f"{name}.acceptor")

    # -- fault-injection hooks (repro.faults) ------------------------------

    def crash(self, wipe: bool = True) -> None:
        """Kill the daemon mid-run: requests are swallowed without a
        reply until :meth:`restart`.  ``wipe`` clears the RamDisk."""
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self.stats.counter(f"{self.name}.crashes").add()
        if wipe:
            self.ramdisk.wipe()

    def restart(self) -> None:
        self.alive = True

    def _accept_loop(self):
        while True:
            conn = yield self.listener.accept()
            self.sim.spawn(self._serve(conn), name=f"{self.name}.worker")

    def _serve(self, conn: Connection):
        """Blocking per-request service loop for one client."""
        sim = self.sim
        while True:
            msg = yield conn.recv()
            if not self.alive:
                self.stats.counter(f"{self.name}.dropped_requests").add()
                continue
            kind, offset, nbytes, token = msg.payload
            ident = {} if msg.req_id is None else {"req_id": msg.req_id}
            if kind == "write":
                cost = self.ramdisk.write(offset, nbytes, token=token)
                t0 = sim.now
                yield from self.cpus.run(cost)
                if sim.trace.enabled and sim.now > t0:
                    sim.trace.complete(
                        self.name, "worker", "ramdisk_write", "srv.copy",
                        t0, sim.now, nbytes=nbytes, **ident,
                    )
                self.requests_served += 1
                yield from conn.send(NBD_REPLY_BYTES, payload=("ack", None),
                                     req_id=msg.req_id)
            elif kind == "read":
                data, cost = self.ramdisk.read(offset, nbytes)
                t0 = sim.now
                yield from self.cpus.run(cost)
                if sim.trace.enabled and sim.now > t0:
                    sim.trace.complete(
                        self.name, "worker", "ramdisk_read", "srv.copy",
                        t0, sim.now, nbytes=nbytes, **ident,
                    )
                self.requests_served += 1
                yield from conn.send(NBD_REPLY_BYTES + nbytes,
                                     payload=("ack", data), req_id=msg.req_id)
            elif kind == "disconnect":
                return
            else:
                raise SimulationError(f"{self.name}: bad NBD opcode {kind!r}")
