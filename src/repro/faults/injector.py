"""Drives a :class:`FaultPlan` against a live scenario.

The injector owns no simulation state of its own: it flips first-class
hooks that the hpbd/nbd/net/ib layers already expose —
``HPBDServer.crash()``/``restart()``, ``Port.set_down()``/``set_up()``/
``degrade()``, the client credit buckets, and the fabric's
``fault_hook`` consulted by the IB channel path for per-message
drop/corrupt decisions.  Scheduled events run off one driver process;
probabilistic faults draw from ``random.Random(plan.seed)`` so a fixed
seed replays the identical fault sequence.

Everything it does is visible in the observability stack: ``fault.*``
counters in the stats registry and instants/spans on the trace under
the ``faults`` component.
"""

from __future__ import annotations

import dataclasses
import random
from typing import TYPE_CHECKING

from ..simulator import SimulationError
from .plan import (
    CreditStarve,
    FaultPlan,
    LinkDegrade,
    LinkFlap,
    ServerCrash,
    ServerSlow,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..hpbd.client import HPBDClient
    from ..hpbd.server import HPBDServer
    from ..nbd.server import NBDServer
    from ..net.link import Fabric
    from ..simulator import Simulator, StatsRegistry

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies one :class:`FaultPlan` to one built scenario."""

    def __init__(
        self,
        sim: "Simulator",
        plan: FaultPlan,
        *,
        stats: "StatsRegistry",
        fabric: "Fabric | None" = None,
        hpbd_servers: "list[HPBDServer] | None" = None,
        hpbd_client: "HPBDClient | None" = None,
        nbd_server: "NBDServer | None" = None,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.stats = stats
        self.fabric = fabric
        self.hpbd_servers = list(hpbd_servers or [])
        self.hpbd_client = hpbd_client
        self.nbd_server = nbd_server
        self._rng = random.Random(plan.seed)
        self.started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Install hooks and spawn the schedule driver (call once,
        after the scenario's devices are connected)."""
        if self.started:
            raise SimulationError("fault injector already started")
        self.started = True
        if self.plan.probabilistic:
            if self.fabric is None:
                raise SimulationError(
                    "probabilistic ctrl faults need the fabric hook"
                )
            self.fabric.fault_hook = self.on_ctrl_send
            # A dropped/corrupted control message must be survivable at
            # both protocol ends: drop-and-count instead of raising, and
            # let the client watchdog retransmit.
            for srv in self.hpbd_servers:
                srv.drop_bad_ctrl = True
            if self.hpbd_client is not None:
                self.hpbd_client.drop_bad_ctrl = True
        if self.plan.events:
            self.sim.spawn(self._driver(), name="faults.driver")

    # -- scheduled events --------------------------------------------------

    def _driver(self):
        sim = self.sim
        for ev in sorted(self.plan.events, key=lambda e: e.at):
            if ev.at > sim.now:
                yield sim.timeout(ev.at - sim.now)
            self._apply(ev)

    def _apply(self, ev) -> None:
        sim = self.sim
        if isinstance(ev, ServerCrash):
            srv = self._resolve_server(ev.server)
            srv.crash(wipe=ev.wipe)
            self.stats.counter("fault.server_crashes").add()
            sim.trace.instant(
                "faults", "inject", "server_crash",
                server=srv.name, wipe=ev.wipe, down_for=ev.down_for,
            )
            if ev.down_for is not None:
                sim.spawn(
                    self._restart_later(srv, ev.down_for),
                    name=f"faults.restart.{srv.name}",
                )
        elif isinstance(ev, ServerSlow):
            srv = self._resolve_server(ev.server)
            srv.slow(service_mult=ev.service_mult, extra_usec=ev.extra_rtt_usec)
            self.stats.counter("fault.server_slowdowns").add()
            sim.trace.instant(
                "faults", "inject", "server_slow",
                server=srv.name, duration=ev.duration,
                service_mult=ev.service_mult,
                extra_rtt_usec=ev.extra_rtt_usec,
            )
            sim.spawn(self._restore_speed_later(srv, ev.duration),
                      name=f"faults.speedup.{srv.name}")
        elif isinstance(ev, LinkFlap):
            port = self._resolve_port(ev.node)
            port.set_down()
            self.stats.counter("fault.link_flaps").add()
            sim.trace.instant(
                "faults", "inject", "link_down",
                node=ev.node, down_for=ev.down_for,
            )
            sim.spawn(self._link_up_later(port, ev.down_for),
                      name=f"faults.linkup.{ev.node}")
        elif isinstance(ev, LinkDegrade):
            port = self._resolve_port(ev.node)
            port.degrade(
                latency_mult=ev.latency_mult,
                byte_time_mult=1.0 / ev.bandwidth_mult,
            )
            self.stats.counter("fault.link_degrades").add()
            sim.trace.instant(
                "faults", "inject", "link_degrade",
                node=ev.node, duration=ev.duration,
                latency_mult=ev.latency_mult,
                bandwidth_mult=ev.bandwidth_mult,
            )
            sim.spawn(self._restore_later(port, ev.duration, ev.node),
                      name=f"faults.restore.{ev.node}")
        elif isinstance(ev, CreditStarve):
            sim.spawn(self._starve(ev), name=f"faults.starve.{ev.server}")
        else:  # pragma: no cover - FaultEvent is closed
            raise TypeError(f"unknown fault event {ev!r}")

    def _restart_later(self, srv, delay: float):
        t0 = self.sim.now
        yield self.sim.timeout(delay)
        srv.restart()
        self.stats.counter("fault.server_restarts").add()
        self.sim.trace.complete(
            "faults", "inject", "server_down", "fault.crash",
            t0, self.sim.now, server=srv.name,
        )

    def _restore_speed_later(self, srv, delay: float):
        t0 = self.sim.now
        yield self.sim.timeout(delay)
        srv.restore_speed()
        self.stats.counter("fault.server_slow_restores").add()
        self.sim.trace.complete(
            "faults", "inject", "server_slow", "fault.slow",
            t0, self.sim.now, server=srv.name,
        )

    def _link_up_later(self, port, delay: float):
        t0 = self.sim.now
        yield self.sim.timeout(delay)
        port.set_up()
        self.sim.trace.complete(
            "faults", "inject", "link_down", "fault.link",
            t0, self.sim.now, node=port.name,
        )

    def _restore_later(self, port, delay: float, node: str):
        t0 = self.sim.now
        yield self.sim.timeout(delay)
        port.restore()
        self.sim.trace.complete(
            "faults", "inject", "link_degraded", "fault.link",
            t0, self.sim.now, node=node,
        )

    def _starve(self, ev: CreditStarve):
        client = self.hpbd_client
        if client is None:
            raise SimulationError("credit starvation needs an HPBD client")
        bucket = client._credits[ev.server]
        # Never take the whole bucket: a zero-credit server would stall
        # the sender for the entire window instead of throttling it.
        ntokens = min(ev.ntokens, bucket.capacity - 1)
        if ntokens < 1:
            return
        yield bucket.acquire(ntokens)
        self.stats.counter("fault.credit_starvations").add()
        t0 = self.sim.now
        yield self.sim.timeout(ev.duration)
        bucket.release(ntokens)
        self.sim.trace.complete(
            "faults", "inject", "credit_starve", "fault.credits",
            t0, self.sim.now, server=ev.server, ntokens=ntokens,
        )

    # -- probabilistic ctrl-message faults ---------------------------------

    def on_ctrl_send(self, qp, wr):
        """Fabric hook: called for every IB channel SEND before the wire.

        Returns the work request to deliver (possibly a corrupted copy),
        or ``None`` to drop the message entirely.
        """
        payload = wr.payload
        if payload is None or not hasattr(payload, "signature"):
            return wr  # not an HPBD control message
        if self.plan.ctrl_drop_prob and self._rng.random() < self.plan.ctrl_drop_prob:
            self.stats.counter("fault.ctrl_dropped").add()
            self.sim.trace.instant(
                "faults", "ctrl", "dropped", req_id=wr.req_id,
            )
            return None
        if (
            self.plan.ctrl_corrupt_prob
            and self._rng.random() < self.plan.ctrl_corrupt_prob
        ):
            self.stats.counter("fault.ctrl_corrupted").add()
            self.sim.trace.instant(
                "faults", "ctrl", "corrupted", req_id=wr.req_id,
            )
            bad = dataclasses.replace(
                payload, signature=payload.signature ^ 0x5A5A5A5A
            )
            return dataclasses.replace(wr, payload=bad)
        return wr

    # -- target resolution -------------------------------------------------

    def _resolve_server(self, which):
        if which == "nbd":
            if self.nbd_server is None:
                raise SimulationError("plan crashes 'nbd' but no NBD server")
            return self.nbd_server
        if not isinstance(which, int) or not (
            0 <= which < len(self.hpbd_servers)
        ):
            raise SimulationError(f"no HPBD server {which!r} to crash")
        return self.hpbd_servers[which]

    def _resolve_port(self, node: str):
        if self.fabric is None or node not in self.fabric._ports:
            raise SimulationError(f"no fabric port {node!r} to fault")
        return self.fabric._ports[node]
