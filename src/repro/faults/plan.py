"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is pure data: a tuple of scheduled fault events
plus optional probabilistic control-message faults, all reproducible
from a single seed.  The plan says *what goes wrong and when*; the
:class:`~repro.faults.injector.FaultInjector` drives it against a live
scenario through first-class hooks in the hpbd/nbd/net/ib layers.

Everything here is a frozen dataclass so plans embed cleanly in
:class:`~repro.config.ScenarioConfig` and hash stably under the sweep
result cache's config fingerprint.

Times are simulation microseconds, matching the simulator clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "ServerCrash",
    "ServerSlow",
    "LinkFlap",
    "LinkDegrade",
    "CreditStarve",
    "FaultEvent",
    "FaultPlan",
]


@dataclass(frozen=True)
class ServerCrash:
    """Crash a memory server (or the NBD server) at ``at`` usec.

    A crashed server silently drops every control message it receives
    and suppresses in-flight replies — exactly what a dead peer looks
    like to the client.  ``wipe=True`` (the default) clears its RamDisk,
    so even after a restart the stored pages are gone; recovery must
    come from a replica, a remap, or the swap semantics (never-written
    pages legitimately read back as zero pages).
    """

    at: float
    #: HPBD server index, or the string ``"nbd"`` for the NBD server.
    server: Union[int, str] = 0
    #: restart after this many usec; ``None`` means it stays down.
    down_for: float | None = None
    wipe: bool = True

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"crash time {self.at} < 0")
        if self.down_for is not None and self.down_for <= 0:
            raise ValueError(f"bad down_for {self.down_for}")


@dataclass(frozen=True)
class ServerSlow:
    """Fail-slow (*limping*) HPBD server for ``duration`` usec.

    Distinct from :class:`LinkDegrade`: the fabric stays healthy, the
    daemon itself limps.  Its RamDisk memcpy cost is scaled by
    ``service_mult`` and every request pays ``extra_rtt_usec`` of extra
    in-handler latency while holding an RDMA slot, so queue depth creeps
    up exactly like a production fail-slow node — the server never goes
    down, it just drags every tenant's tail with it.
    """

    at: float
    #: HPBD server index (fail-slow targets memory servers only).
    server: int = 0
    duration: float = 1.0
    #: memcpy/CPU service-cost multiplier (>= 1).
    service_mult: float = 4.0
    #: flat extra per-request latency inside the handler, usec.
    extra_rtt_usec: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration <= 0:
            raise ValueError(f"bad slow window ({self.at}, {self.duration})")
        if self.service_mult < 1.0:
            raise ValueError(f"service_mult {self.service_mult} < 1")
        if self.extra_rtt_usec < 0:
            raise ValueError(f"extra_rtt_usec {self.extra_rtt_usec} < 0")


@dataclass(frozen=True)
class LinkFlap:
    """Take node ``node``'s port fully down for ``down_for`` usec.

    Transfers that would start while the port is down park on the
    port's up-latch and all complete (in order) once it comes back —
    the client sees a burst of timeouts followed by stale replies.
    """

    at: float
    node: str
    down_for: float

    def __post_init__(self) -> None:
        if self.at < 0 or self.down_for <= 0:
            raise ValueError(f"bad flap window ({self.at}, {self.down_for})")


@dataclass(frozen=True)
class LinkDegrade:
    """Degrade node ``node``'s port for ``duration`` usec.

    ``latency_mult`` scales per-hop latency; ``bandwidth_mult`` scales
    effective bandwidth (0.1 means one tenth the throughput).  The link
    keeps flowing — slowly — so this exercises the timeout/retry path
    without parking transfers.
    """

    at: float
    node: str
    duration: float
    latency_mult: float = 1.0
    bandwidth_mult: float = 1.0

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration <= 0:
            raise ValueError(f"bad degrade window ({self.at}, {self.duration})")
        if self.latency_mult < 1.0:
            raise ValueError(f"latency_mult {self.latency_mult} < 1")
        if not (0.0 < self.bandwidth_mult <= 1.0):
            raise ValueError(f"bandwidth_mult {self.bandwidth_mult} not in (0, 1]")


@dataclass(frozen=True)
class CreditStarve:
    """Steal ``ntokens`` flow-control credits to HPBD server ``server``
    for ``duration`` usec, throttling the client's request pipeline."""

    at: float
    server: int = 0
    ntokens: int = 1
    duration: float = 1.0

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration <= 0:
            raise ValueError(f"bad starve window ({self.at}, {self.duration})")
        if self.ntokens < 1:
            raise ValueError(f"bad ntokens {self.ntokens}")


FaultEvent = Union[ServerCrash, ServerSlow, LinkFlap, LinkDegrade, CreditStarve]


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of faults.

    ``events`` fire at their ``at`` times (the injector sorts them).
    ``ctrl_drop_prob`` / ``ctrl_corrupt_prob`` apply per control
    message on the IB channel (SEND/RECV) path, drawn from a
    ``random.Random(seed)`` stream — the same seed replays the exact
    same fault sequence against the same workload.
    """

    events: tuple[FaultEvent, ...] = ()
    ctrl_drop_prob: float = 0.0
    ctrl_corrupt_prob: float = 0.0
    seed: int = 1

    def __post_init__(self) -> None:
        for p, what in (
            (self.ctrl_drop_prob, "ctrl_drop_prob"),
            (self.ctrl_corrupt_prob, "ctrl_corrupt_prob"),
        ):
            if not (0.0 <= p < 1.0):
                raise ValueError(f"{what} {p} not in [0, 1)")

    @property
    def probabilistic(self) -> bool:
        return self.ctrl_drop_prob > 0.0 or self.ctrl_corrupt_prob > 0.0
