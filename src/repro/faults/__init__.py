"""Deterministic fault injection and the plans that drive it.

Split so that :mod:`repro.config` can import the pure-data plan types
without pulling in the injector's runtime dependencies.
"""

from .injector import FaultInjector
from .plan import (
    CreditStarve,
    FaultEvent,
    FaultPlan,
    LinkDegrade,
    LinkFlap,
    ServerCrash,
    ServerSlow,
)

__all__ = [
    "CreditStarve",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LinkDegrade",
    "LinkFlap",
    "ServerCrash",
    "ServerSlow",
]
