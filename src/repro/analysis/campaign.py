"""Cross-seed campaign aggregation with confidence intervals.

Takes the :class:`~repro.obs.campaign.RunRecord` stream out of a
campaign store and turns it into the statistics the comparison gate and
the HTML dashboard consume: per (point × metric) groups with
mean/p50/p95/p99 and either Student-t or bootstrap confidence
intervals, plus pooled quantiles from merging the per-seed
:class:`~repro.obs.sketch.QuantileSketch` snapshots (DDSketch merge =
bucket-count addition, so the pooled estimate keeps the single-sketch
relative-error bound).

CI fine print:

* The **t interval** treats the per-seed values as i.i.d. samples of
  the metric and reports ``mean ± t_{n-1, level} · s/√n`` with the
  two-sided critical value from a built-in table (no scipy).  With a
  single seed the interval is degenerate (``[mean, mean]``) — the
  comparator then falls back to threshold-only significance.
* The **bootstrap interval** is the percentile bootstrap of the mean
  (seeded numpy generator, so aggregation is deterministic).  With few
  seeds (< ~5) it under-covers; t is the default for exactly that
  regime.
* Quantile metrics (``<sketch>.p99`` etc.) get their CI from the
  *per-seed* quantile values — the spread across replicas — while the
  ``pooled`` field carries the merged-sketch estimate over all seeds'
  samples at once.  The two answer different questions (run-to-run
  variability vs the population quantile) and the dashboard shows both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..obs.campaign import RunRecord
from ..obs.sketch import QuantileSketch

__all__ = [
    "MetricStats",
    "CampaignSummary",
    "aggregate",
    "t_critical",
    "DEFAULT_QUANTILES",
]

#: quantiles extracted from each serialized sketch
DEFAULT_QUANTILES = (50, 95, 99)

#: two-sided Student-t critical values, df 1..30, by confidence level;
#: beyond df=30 the normal asymptote is used.
_T_TABLE = {
    0.90: (
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
        1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
        1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
        1.701, 1.699, 1.697,
    ),
    0.95: (
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042,
    ),
    0.99: (
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
        3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
        2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
        2.763, 2.756, 2.750,
    ),
}
_Z_ASYMPTOTE = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def t_critical(df: int, level: float = 0.95) -> float:
    """Two-sided Student-t critical value (table lookup, no scipy)."""
    if level not in _T_TABLE:
        raise ValueError(
            f"unsupported confidence level {level} "
            f"(choose from {sorted(_T_TABLE)})"
        )
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    table = _T_TABLE[level]
    if df <= len(table):
        return table[df - 1]
    return _Z_ASYMPTOTE[level]


@dataclass
class MetricStats:
    """One (point × metric) group's cross-seed statistics."""

    point: str
    metric: str
    values: list[float]  # one per seed, record order
    mean: float
    std: float  # sample std (ddof=1); 0.0 with a single seed
    ci_lo: float
    ci_hi: float
    method: str  # "t" | "bootstrap"
    #: merged-sketch estimate over all seeds' samples (quantile metrics
    #: only); None for scalar metrics
    pooled: "float | None" = None

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def halfwidth(self) -> float:
        return (self.ci_hi - self.ci_lo) / 2.0

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "metric": self.metric,
            "n": self.n,
            "values": list(self.values),
            "mean": self.mean,
            "std": self.std,
            "ci_lo": self.ci_lo,
            "ci_hi": self.ci_hi,
            "method": self.method,
            "pooled": self.pooled,
        }


@dataclass
class CampaignSummary:
    """Aggregated campaign: ``groups[point][metric] -> MetricStats``."""

    groups: dict[str, dict[str, MetricStats]]
    seeds: dict[str, list[int]] = field(default_factory=dict)
    nrecords: int = 0
    ci_level: float = 0.95
    method: str = "t"

    @property
    def points(self) -> list[str]:
        return sorted(self.groups)

    def metrics(self, point: str) -> list[str]:
        return sorted(self.groups.get(point, {}))

    def get(self, point: str, metric: str) -> "MetricStats | None":
        return self.groups.get(point, {}).get(metric)

    def to_dict(self) -> dict:
        return {
            "ci_level": self.ci_level,
            "method": self.method,
            "nrecords": self.nrecords,
            "seeds": {p: list(s) for p, s in sorted(self.seeds.items())},
            "groups": {
                point: {
                    metric: stats.to_dict()
                    for metric, stats in sorted(metrics.items())
                }
                for point, metrics in sorted(self.groups.items())
            },
        }


def _interval(
    values: list[float],
    level: float,
    method: str,
    bootstrap_iters: int,
    bootstrap_seed: int,
) -> tuple[float, float, float, float]:
    """``(mean, std, ci_lo, ci_hi)`` for one group's per-seed values."""
    arr = np.asarray(values, dtype=np.float64)
    mean = float(arr.mean())
    if len(arr) < 2:
        return mean, 0.0, mean, mean
    std = float(arr.std(ddof=1))
    if method == "t":
        half = t_critical(len(arr) - 1, level) * std / math.sqrt(len(arr))
        return mean, std, mean - half, mean + half
    if method == "bootstrap":
        rng = np.random.default_rng(bootstrap_seed)
        resamples = rng.integers(0, len(arr), size=(bootstrap_iters, len(arr)))
        means = arr[resamples].mean(axis=1)
        alpha = (1.0 - level) / 2.0
        lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
        return mean, std, float(lo), float(hi)
    raise ValueError(f"unknown CI method {method!r} (use 't' or 'bootstrap')")


def dedupe(records: "list[RunRecord]") -> "list[RunRecord]":
    """Keep the *last* record per (point, seed): re-running a campaign
    appends fresh records that supersede earlier ones."""
    latest: dict[tuple[str, int], RunRecord] = {}
    for record in records:
        latest[(record.point, record.seed)] = record
    # Preserve first-seen group order, not file order of the survivor.
    seen: set[tuple[str, int]] = set()
    out: list[RunRecord] = []
    for record in records:
        key = (record.point, record.seed)
        if key in seen:
            continue
        seen.add(key)
        out.append(latest[key])
    return out


def aggregate(
    records: "list[RunRecord]",
    *,
    quantiles: "tuple[int, ...]" = DEFAULT_QUANTILES,
    ci_level: float = 0.95,
    method: str = "t",
    bootstrap_iters: int = 2000,
    bootstrap_seed: int = 0,
) -> CampaignSummary:
    """Group records by (point × metric) and attach CIs.

    Scalar metrics come straight off ``record.metrics``; each serialized
    sketch additionally contributes ``<name>.p<q>`` quantile metrics
    (per-seed values + pooled merged-sketch estimate) and ``<name>.mean``.
    """
    records = dedupe(records)
    by_point: dict[str, list[RunRecord]] = {}
    for record in records:
        by_point.setdefault(record.point, []).append(record)

    groups: dict[str, dict[str, MetricStats]] = {}
    seeds: dict[str, list[int]] = {}
    for point, recs in sorted(by_point.items()):
        seeds[point] = [r.seed for r in recs]
        metric_values: dict[str, list[float]] = {}
        pooled: dict[str, float] = {}
        for rec in recs:
            for name, value in rec.metrics.items():
                metric_values.setdefault(name, []).append(float(value))
        # Sketch-backed quantile metrics: per-seed values from each
        # record's own sketch, pooled estimate from the merged sketch.
        sketch_names = sorted(
            {name for rec in recs for name in rec.sketches}
        )
        for name in sketch_names:
            merged: "QuantileSketch | None" = None
            per_seed: dict[int, QuantileSketch] = {}
            for rec in recs:
                if name not in rec.sketches:
                    continue
                sketch = rec.sketch(name)
                per_seed[rec.seed] = sketch
                if merged is None:
                    merged = sketch.copy()
                else:
                    merged.merge(sketch)
            if merged is None or not merged.count:
                continue
            for q in quantiles:
                metric = f"{name}.p{q}"
                metric_values[metric] = [
                    s.quantile(q) for s in per_seed.values()
                ]
                pooled[metric] = merged.quantile(q)
            metric = f"{name}.mean"
            metric_values[metric] = [s.mean for s in per_seed.values()]
            pooled[metric] = merged.mean

        stats: dict[str, MetricStats] = {}
        for metric, values in sorted(metric_values.items()):
            mean, std, lo, hi = _interval(
                values, ci_level, method, bootstrap_iters, bootstrap_seed
            )
            stats[metric] = MetricStats(
                point=point,
                metric=metric,
                values=values,
                mean=mean,
                std=std,
                ci_lo=lo,
                ci_hi=hi,
                method=method,
                pooled=pooled.get(metric),
            )
        groups[point] = stats

    return CampaignSummary(
        groups=groups,
        seeds=seeds,
        nrecords=len(records),
        ci_level=ci_level,
        method=method,
    )
