"""Per-request critical-path reconstruction and blame attribution.

`repro.analysis.breakdown` answers "how much total time did each stage
take"; this module answers the causal question — for *one* block
request, where did its end-to-end latency go?  Every span on the swap
request path carries ``req_id`` (the block-layer request identity), so
the trace can be regrouped per request and its window partitioned into
mutually exclusive blame classes:

* the window is ``[queue_wait.start, service.end]`` — first bio
  submitted to last bio completed, which is exactly the request's
  traced end-to-end latency (``blk.queue`` and ``blk.service`` are
  contiguous at dispatch);
* every span inside the window claims its interval for its blame
  class; where spans overlap (an umbrella like ``srv.handle`` covering
  a ``wire`` transfer), the **most specific** class wins, by fixed
  precedence;
* time covered by no span at all is ``other`` (driver thread wakeups,
  CQ polling gaps, event-notification latency).

Because the classes partition the window, per-request blame components
**sum to the request's end-to-end latency by construction** — the
acceptance check the tests enforce, and what makes aggregate shares
comparable with the §6.2 stage breakdown and the Amdahl cross-check.

Precedence (most specific first): data ``wire`` and control ``ctrl``
transfers, then ``disk`` mechanism time, driver copies, on-the-fly
registration, server-side handling, TCP stack CPU, port queueing,
flow-control waits (credits / pool allocation), and finally the block
queue plug/merge wait.  Umbrella spans (``blk.service``, ``hpbd.rtt``,
``hpbd.request``, ``nbd.rtt``, ``vm.*``) are observation windows, not
blame sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.trace import Span, TraceRecorder

__all__ = [
    "BLAME_CLASSES",
    "QUEUEING_CLASSES",
    "REQUEST_PATH_CATS",
    "RequestPath",
    "request_paths",
    "aggregate_blame",
    "blame_split",
    "orphan_spans",
    "slowest",
    "format_critpath",
]

#: blame classes in precedence order (most specific first) with the
#: span cats that feed them.
_BLAME_PRECEDENCE: tuple[tuple[str, frozenset[str]], ...] = (
    ("wire", frozenset({"wire"})),
    ("ctrl", frozenset({"ctrl"})),
    # Fault recovery (repro.faults): time lost to failed/abandoned
    # attempts and to retry backoff.  Ranked below wire/ctrl so the
    # failed attempt's own wire time stays billed to the wire, and the
    # unanswered remainder lands here instead of inflating "other".
    ("fault", frozenset({"hpbd.timeout", "hpbd.failover"})),
    ("retry", frozenset({"hpbd.retry"})),
    # Erasure-coded degraded reads (repro.redundancy): the window from
    # the k-survivor fan-out to the GF(256) reconstruct.  Ranked below
    # wire/ctrl so each shard fetch's wire time stays billed to the
    # wire and the fan-out/decode remainder lands here.
    ("degraded_read", frozenset({"hpbd.degraded"})),
    # Hedged mirror reads (fail-slow mitigation): time the original
    # attempt kept limping before its hedge won the race (hedge_win),
    # and the losing hedge's own window when the primary answered first
    # (hedge_waste).  Both rank below wire/ctrl so the racing attempts'
    # wire time stays billed to the wire.
    ("hedge_win", frozenset({"hpbd.hedge_win"})),
    ("hedge_waste", frozenset({"hpbd.hedge_waste"})),
    ("disk", frozenset({"disk.service"})),
    # Parity encode (GF(256) multiply-XOR passes) is client CPU work on
    # the write path, same class as the pool memcpy it sits beside.
    ("copy", frozenset({"hpbd.copy", "hpbd.parity"})),
    ("registration", frozenset({"reg"})),
    # Cluster QoS: time a request sat in the server's weighted-fair
    # queue waiting for a handler slot (repro.cluster.qos).
    ("qos_wait", frozenset({"srv.qos"})),
    # Overcommit eviction: server-side spill-disk I/O (residency-cap
    # eviction or fault-in) — ranked above "server" so it wins over the
    # umbrella srv.handle it nests inside.
    ("spill", frozenset({"srv.spill"})),
    # Fail-slow injection: the per-op stall a limping server adds on
    # top of its scaled service time — ranked above "server" so it wins
    # over the umbrella srv.handle it nests inside.
    ("server_slow", frozenset({"srv.slow"})),
    ("server", frozenset({"srv.copy", "srv.handle"})),
    ("host", frozenset({"tcp.host"})),
    ("port_wait", frozenset({"net.wait"})),
    ("flow_control", frozenset({"hpbd.credit", "hpbd.pool"})),
    ("queue", frozenset({"blk.queue", "blk.wait"})),
)

_LABELS = tuple(label for label, _cats in _BLAME_PRECEDENCE)
_RANK: dict[str, int] = {
    cat: rank
    for rank, (_label, cats) in enumerate(_BLAME_PRECEDENCE)
    for cat in cats
}

#: residual class: window time covered by no request-path span.
OTHER = "other"

#: all blame labels, in precedence order, ``other`` last.
BLAME_CLASSES: tuple[str, ...] = _LABELS + (OTHER,)

#: the labels that are *queueing* (waiting for a turn) rather than
#: service — the queueing-vs-wire split carried into BENCH files.
QUEUEING_CLASSES: tuple[str, ...] = ("queue", "flow_control", "port_wait")

#: every span cat that belongs to the swap request path and therefore
#: must carry ``req_id`` (the orphan audit).  Setup-time work
#: (``reg.setup``) and monitors (``invariant``) are deliberately not
#: request-scoped; ``vm.*`` spans sit above the block layer and cover
#: many requests at once.
REQUEST_PATH_CATS: frozenset[str] = frozenset(
    {
        "blk.queue",
        "blk.wait",
        "blk.service",
        "hpbd.pool",
        "hpbd.copy",
        "hpbd.credit",
        "hpbd.rtt",
        "hpbd.request",
        "hpbd.timeout",
        "hpbd.failover",
        "hpbd.retry",
        "hpbd.hedge_win",
        "hpbd.hedge_waste",
        "hpbd.degraded",
        "hpbd.parity",
        "reg",
        "net.wait",
        "wire",
        "ctrl",
        "srv.handle",
        "srv.copy",
        "srv.qos",
        "srv.spill",
        "srv.slow",
        "nbd.rtt",
        "disk.service",
        "tcp.host",
    }
)


@dataclass(frozen=True)
class RequestPath:
    """One block request's reconstructed window and blame partition."""

    req_id: int
    op: str
    sector: int
    nbytes: int
    submit: float  # first bio queued (blk.queue start)
    dispatch: float  # handed to the driver (blk.service start)
    complete: float  # all bios completed (blk.service end)
    #: label -> µs; partitions [submit, complete], so values sum to e2e
    blame: dict[str, float]
    nspans: int

    @property
    def e2e(self) -> float:
        return self.complete - self.submit

    @property
    def queue_wait(self) -> float:
        return self.dispatch - self.submit

    @property
    def service(self) -> float:
        return self.complete - self.dispatch

    def top_blame(self, n: int = 3) -> list[tuple[str, float]]:
        """The ``n`` largest blame components (label, µs), descending."""
        ranked = sorted(
            (item for item in self.blame.items() if item[1] > 0),
            key=lambda item: item[1],
            reverse=True,
        )
        return ranked[:n]


def _partition(
    spans: "list[Span]", lo: float, hi: float
) -> dict[str, float]:
    """Split [lo, hi] across blame classes by precedence sweep.

    Each elementary interval between span edges is charged to the
    highest-precedence class with a span covering it; uncovered time is
    ``other``.  Spans per request number a few dozen at most, so the
    quadratic stabbing is cheap and obviously correct.
    """
    intervals: list[tuple[float, float, int]] = []
    for span in spans:
        rank = _RANK.get(span.cat)
        if rank is None:
            continue
        a = span.start if span.start > lo else lo
        b = span.end if span.end < hi else hi
        if b > a:
            intervals.append((a, b, rank))
    blame = dict.fromkeys(BLAME_CLASSES, 0.0)
    if not intervals:
        blame[OTHER] = hi - lo
        return blame
    edges = sorted(
        {lo, hi}
        | {a for a, _b, _r in intervals}
        | {b for _a, b, _r in intervals}
    )
    for a, b in zip(edges, edges[1:]):
        if b <= a:
            continue
        mid = (a + b) / 2.0
        best: int | None = None
        for s, e, rank in intervals:
            if s <= mid < e and (best is None or rank < best):
                best = rank
        label = _LABELS[best] if best is not None else OTHER
        blame[label] += b - a
    return blame


def request_paths(rec: "TraceRecorder") -> list[RequestPath]:
    """Reconstruct every completed block request from the trace.

    A request needs both its ``blk.queue`` and ``blk.service`` spans to
    define the window; requests missing either (none, once a scenario
    has quiesced) are skipped.  Returned in completion order.
    """
    by_req: dict[int, list[Span]] = {}
    for span in rec.spans:
        args = span.args
        if args is None:
            continue
        rid = args.get("req_id")
        if rid is None or span.cat not in REQUEST_PATH_CATS:
            continue
        by_req.setdefault(rid, []).append(span)
    paths: list[RequestPath] = []
    for rid, spans in by_req.items():
        queue = service = None
        for span in spans:
            if span.cat == "blk.queue" and queue is None:
                queue = span
            elif span.cat == "blk.service" and service is None:
                service = span
        if queue is None or service is None:
            continue
        lo, hi = queue.start, service.end
        qargs = queue.args or {}
        paths.append(
            RequestPath(
                req_id=rid,
                op=str(qargs.get("op", "?")),
                sector=int(qargs.get("sector", -1)),
                nbytes=int(qargs.get("nbytes", 0)),
                submit=lo,
                dispatch=service.start,
                complete=hi,
                blame=_partition(spans, lo, hi),
                nspans=len(spans),
            )
        )
    paths.sort(key=lambda p: p.complete)
    return paths


def aggregate_blame(paths: list[RequestPath]) -> dict[str, float]:
    """Sum blame per class over all requests (µs).

    The total equals the sum of per-request end-to-end latencies — NOT
    wall-clock time, since request windows overlap.
    """
    out = dict.fromkeys(BLAME_CLASSES, 0.0)
    for path in paths:
        for label, usec in path.blame.items():
            out[label] += usec
    return out


def blame_split(blame: dict[str, float]) -> dict[str, float]:
    """The queueing-vs-wire fractions BENCH files carry."""
    total = sum(blame.values())
    if total <= 0:
        return {"queueing_frac": 0.0, "wire_frac": 0.0}
    queueing = sum(blame.get(label, 0.0) for label in QUEUEING_CLASSES)
    return {
        "queueing_frac": queueing / total,
        "wire_frac": blame.get("wire", 0.0) / total,
    }


def orphan_spans(rec: "TraceRecorder") -> "list[Span]":
    """Request-path spans missing ``req_id`` (instrumentation-audit
    failures: critpath would silently drop their time)."""
    return [
        span
        for span in rec.spans
        if span.cat in REQUEST_PATH_CATS
        and (span.args is None or span.args.get("req_id") is None)
    ]


def slowest(paths: list[RequestPath], n: int = 10) -> list[RequestPath]:
    """The ``n`` slowest requests by end-to-end latency."""
    return sorted(paths, key=lambda p: p.e2e, reverse=True)[:n]


def format_critpath(paths: list[RequestPath], top: int = 10) -> str:
    """Human-readable report: aggregate blame then the top-N slowest."""
    lines: list[str] = []
    if not paths:
        return "no completed block requests in trace\n"
    agg = aggregate_blame(paths)
    total = sum(agg.values())
    lines.append(
        f"{len(paths)} block requests, "
        f"summed request latency {total / 1000.0:.1f} ms"
    )
    lines.append("")
    lines.append("aggregate blame (share of request latency):")
    for label in BLAME_CLASSES:
        usec = agg[label]
        if usec <= 0:
            continue
        share = usec / total if total > 0 else 0.0
        lines.append(f"  {label:<13s} {usec / 1000.0:>10.2f} ms  {share:>6.1%}")
    split = blame_split(agg)
    lines.append(
        f"  queueing {split['queueing_frac']:.1%} vs "
        f"wire {split['wire_frac']:.1%}"
    )
    lines.append("")
    lines.append(f"top {min(top, len(paths))} slowest requests:")
    lines.append(
        f"  {'req':>6s} {'op':<5s} {'KiB':>6s} {'e2e us':>10s} "
        f"{'queue us':>9s}  blame"
    )
    for path in slowest(paths, top):
        blame = " ".join(
            f"{label}={usec / path.e2e:.0%}"
            for label, usec in path.top_blame(3)
        )
        lines.append(
            f"  {path.req_id:>6d} {path.op:<5s} {path.nbytes // 1024:>6d} "
            f"{path.e2e:>10.1f} {path.queue_wait:>9.1f}  {blame}"
        )
    return "\n".join(lines) + "\n"
