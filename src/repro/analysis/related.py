"""Table 1: the paper's taxonomy of remote-memory systems.

Reproduced as data so the benchmark harness can regenerate the table.
Classification axes (§2): simulation vs implementation; global resource
management vs point-to-point sharing; kernel- vs user-level design;
TCP/IP vs user-level-protocol (ULP) transport.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RelatedSystem", "TABLE1", "render_table1"]

NA = "N/A"


@dataclass(frozen=True)
class RelatedSystem:
    name: str
    citation: str
    simulation_based: bool
    global_management: str  # "Y" / "N"
    kernel_level: str  # "Y" / "N" / "N/A"
    tcp_based: str  # "Y" / "N" / "Y(UDP)" / "N/A"
    ulp_based: str  # "Y" / "N" / "N/A"


TABLE1: tuple[RelatedSystem, ...] = (
    RelatedSystem("COCA", "[4]", True, "Y", NA, NA, NA),
    RelatedSystem("PNR", "[17]", True, "Y", NA, NA, NA),
    RelatedSystem("JMNRM", "[24]", True, "Y", NA, NA, NA),
    RelatedSystem("NRAM", "[5]", False, "N", "N", "Y", "N"),
    RelatedSystem("NRD", "[12]", False, "N", "Y", "Y", "N"),
    RelatedSystem("RRMP", "[14]", False, "N", "Y", "Y", "N"),
    RelatedSystem("MOSIX", "[3]", False, "Y", "Y", "Y", "N"),
    RelatedSystem("GMM", "[7]", False, "Y", "Y", "Y(UDP)", "N"),
    RelatedSystem("DoDo", "[10]", False, "Y", "N", "Y", "Y"),
    RelatedSystem("HPBD", "(this)", False, "N", "Y", "N", "Y"),
)


def render_table1() -> str:
    """The paper's Table 1 as fixed-width text."""
    header = (
        f"{'System':8s} {'Based on':14s} {'GlobalMgmt':10s} "
        f"{'KernelLevel':11s} {'TCP/IP':8s} {'ULP':5s}"
    )
    lines = [header, "-" * len(header)]
    for s in TABLE1:
        basis = "Simulation" if s.simulation_based else "Implementation"
        lines.append(
            f"{s.name:8s} {basis:14s} {s.global_management:10s} "
            f"{s.kernel_level:11s} {s.tcp_based:8s} {s.ulp_based:5s}"
        )
    return "\n".join(lines)
