"""Analysis of run results: the paper's §6.2 decomposition, Fig. 6
request clustering, Table 1 data, and text reporting."""

from .amdahl import (
    AmdahlReport,
    amdahl_report,
    direct_network_fraction,
    infer_network_fraction,
)
from .breakdown import (
    STAGES,
    StageTotal,
    format_breakdown,
    measured_breakdown,
    measured_network_fraction,
    stage_totals,
    wire_crosscheck,
)
from .critpath import (
    BLAME_CLASSES,
    QUEUEING_CLASSES,
    REQUEST_PATH_CATS,
    RequestPath,
    aggregate_blame,
    blame_split,
    format_critpath,
    orphan_spans,
    request_paths,
    slowest,
)
from .related import TABLE1, RelatedSystem, render_table1
from .export import (
    clusters_to_csv,
    results_to_csv,
    series_to_csv,
    trace_to_csv,
    write_csv,
)
from .campaign import CampaignSummary, MetricStats, aggregate, dedupe
from .compare import (
    CompareReport,
    FloorViolation,
    MetricDelta,
    check_floors,
    compare_summaries,
    format_compare,
    metric_direction,
)
from .htmlreport import render_campaign_html
from .report import comparison_table, format_table, ratio, write_json_report
from .reqsize import RequestCluster, cluster_requests, size_histogram

__all__ = [
    "AmdahlReport",
    "amdahl_report",
    "infer_network_fraction",
    "direct_network_fraction",
    "STAGES",
    "StageTotal",
    "stage_totals",
    "measured_breakdown",
    "measured_network_fraction",
    "wire_crosscheck",
    "format_breakdown",
    "BLAME_CLASSES",
    "QUEUEING_CLASSES",
    "REQUEST_PATH_CATS",
    "RequestPath",
    "request_paths",
    "aggregate_blame",
    "blame_split",
    "orphan_spans",
    "slowest",
    "format_critpath",
    "RequestCluster",
    "cluster_requests",
    "size_histogram",
    "RelatedSystem",
    "TABLE1",
    "render_table1",
    "format_table",
    "comparison_table",
    "ratio",
    "write_json_report",
    "series_to_csv",
    "results_to_csv",
    "clusters_to_csv",
    "trace_to_csv",
    "write_csv",
    "MetricStats",
    "CampaignSummary",
    "aggregate",
    "dedupe",
    "MetricDelta",
    "CompareReport",
    "compare_summaries",
    "metric_direction",
    "FloorViolation",
    "check_floors",
    "format_compare",
    "render_campaign_html",
]
