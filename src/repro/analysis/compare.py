"""Campaign comparison and regression gating.

Two modes, both surfaced as ``repro compare``:

* **campaign vs campaign** — align two aggregated campaigns on
  (point × metric) and flag statistically significant changes.  A
  change is *significant* when the confidence intervals are disjoint
  **and** the relative change in means exceeds the threshold; with a
  single seed per side the intervals are degenerate, so the relative
  threshold alone decides (documented fine print, not a silent
  behavior).  Whether a significant change is a *regression* depends
  on the metric's direction (latency down = good, availability up =
  good); metrics with no known direction report as neutral *shifts*
  and do not trip the gate.
* **campaign vs bench floors** — ``BENCH_simulator.json`` carries a
  ``campaign_floors`` list of ``{point-glob, metric, min/max}`` bounds;
  every record of the campaign is checked against every matching
  floor, turning the bench file into a hard regression gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch

from ..obs.campaign import RunRecord
from .campaign import CampaignSummary, MetricStats

__all__ = [
    "MetricDelta",
    "CompareReport",
    "compare_summaries",
    "metric_direction",
    "FloorViolation",
    "check_floors",
    "format_compare",
]

#: metric-name fragments implying "lower is better"
_LOWER_MARKERS = (
    "usec", "violations", "breach", "spread", "burn", "retries",
    "timeouts", "stall",
)
#: metric-name fragments implying "higher is better"
_HIGHER_MARKERS = (
    "availability", "jain", "events_per_sec", "throughput",
)


def metric_direction(name: str) -> "str | None":
    """``"lower"``/``"higher"``-is-better, or None when a change in the
    metric is neither good nor bad per se (page counts, byte counts)."""
    low = name.lower()
    if any(marker in low for marker in _HIGHER_MARKERS):
        return "higher"
    if any(marker in low for marker in _LOWER_MARKERS):
        return "lower"
    return None


@dataclass
class MetricDelta:
    """One aligned (point × metric) pair across two campaigns."""

    point: str
    metric: str
    base: MetricStats
    test: MetricStats
    rel_change: float  # (test.mean - base.mean) / |base.mean|
    direction: "str | None"
    significant: bool
    #: "regression" | "improvement" | "shift" | "ok"
    kind: str

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "metric": self.metric,
            "base_mean": self.base.mean,
            "base_ci": [self.base.ci_lo, self.base.ci_hi],
            "base_n": self.base.n,
            "test_mean": self.test.mean,
            "test_ci": [self.test.ci_lo, self.test.ci_hi],
            "test_n": self.test.n,
            "rel_change": self.rel_change,
            "direction": self.direction,
            "significant": self.significant,
            "kind": self.kind,
        }


@dataclass
class CompareReport:
    """All aligned deltas plus the gate verdict."""

    deltas: list[MetricDelta]
    threshold: float
    missing_points: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.kind == "regression"]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.kind == "improvement"]

    @property
    def shifts(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.kind == "shift"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "threshold": self.threshold,
            "ok": self.ok,
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "shifts": len(self.shifts),
            "missing_points": list(self.missing_points),
            "deltas": [d.to_dict() for d in self.deltas],
        }


def _disjoint(a: MetricStats, b: MetricStats) -> bool:
    return b.ci_lo > a.ci_hi or b.ci_hi < a.ci_lo


def compare_summaries(
    base: CampaignSummary,
    test: CampaignSummary,
    *,
    threshold: float = 0.05,
) -> CompareReport:
    """Diff two aggregated campaigns.

    Only points and metrics present on both sides are compared; points
    present in exactly one campaign are listed in ``missing_points``
    (informational, not a gate failure — grids legitimately evolve).
    """
    deltas: list[MetricDelta] = []
    base_points = set(base.groups)
    test_points = set(test.groups)
    missing = sorted(base_points ^ test_points)
    for point in sorted(base_points & test_points):
        bmetrics = base.groups[point]
        tmetrics = test.groups[point]
        for metric in sorted(set(bmetrics) & set(tmetrics)):
            b, t = bmetrics[metric], tmetrics[metric]
            denom = abs(b.mean)
            if denom == 0.0:
                rel = 0.0 if t.mean == 0.0 else float("inf")
            else:
                rel = (t.mean - b.mean) / denom
            significant = abs(rel) >= threshold and _disjoint(b, t)
            direction = metric_direction(metric)
            if not significant:
                kind = "ok"
            elif direction is None:
                kind = "shift"
            elif (rel > 0) == (direction == "lower"):
                kind = "regression"
            else:
                kind = "improvement"
            deltas.append(
                MetricDelta(
                    point=point,
                    metric=metric,
                    base=b,
                    test=t,
                    rel_change=rel,
                    direction=direction,
                    significant=significant,
                    kind=kind,
                )
            )
    return CompareReport(
        deltas=deltas, threshold=threshold, missing_points=missing
    )


@dataclass
class FloorViolation:
    """One record outside a bench-file bound."""

    point: str
    seed: int
    metric: str
    value: float
    bound: str  # "min" | "max"
    limit: float

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "seed": self.seed,
            "metric": self.metric,
            "value": self.value,
            "bound": self.bound,
            "limit": self.limit,
        }


def check_floors(
    records: "list[RunRecord]", floors: "list[dict]"
) -> list[FloorViolation]:
    """Check every record against every matching ``campaign_floors``
    entry: ``{"point": glob, "metric": name, "min": x, "max": y}``
    (either bound optional).  Per-record, not per-mean — a floor is a
    hard bound, so one bad seed trips it.
    """
    violations: list[FloorViolation] = []
    for floor in floors:
        pattern = floor.get("point", "*")
        metric = floor["metric"]
        fmin = floor.get("min")
        fmax = floor.get("max")
        for record in records:
            if not fnmatch(record.point, pattern):
                continue
            value = record.metrics.get(metric)
            if value is None:
                continue
            if fmin is not None and value < fmin:
                violations.append(
                    FloorViolation(
                        record.point, record.seed, metric,
                        float(value), "min", float(fmin),
                    )
                )
            if fmax is not None and value > fmax:
                violations.append(
                    FloorViolation(
                        record.point, record.seed, metric,
                        float(value), "max", float(fmax),
                    )
                )
    return violations


def format_compare(report: CompareReport, *, all_rows: bool = False) -> str:
    """Fixed-width text rendering of a comparison (significant rows
    only unless ``all_rows``)."""
    from .report import format_table

    rows = []
    for d in report.deltas:
        if not all_rows and d.kind == "ok":
            continue
        rows.append([
            d.point,
            d.metric,
            f"{d.base.mean:.4g}",
            f"{d.test.mean:.4g}",
            f"{d.rel_change:+.1%}",
            d.kind,
        ])
    if not rows:
        return "no significant changes"
    return format_table(
        ["point", "metric", "base", "test", "change", "verdict"], rows
    )
