"""The §6.2 Amdahl decomposition: how much of swapping is network time?

The paper's method: NBD over GigE and NBD over IPoIB "follow identical
code path above the IP protocol layer", so the run-time difference is
purely wire speed.  With testswap's ~120 KiB messages, Amdahl's law
yields the network share of each transport's overhead: ≈48 % for GigE,
≈34.5 % for IPoIB, and (by a rougher estimate) <30 % for HPBD — leading
to the paper's conclusion that *host* overhead dominates once the
network is fast.

Two calculators live here:

* :func:`infer_network_fraction` — the paper's inference from two
  run times plus the relative wire speed (usable on real measurements);
* :func:`direct_network_fraction` — the simulator's ground truth,
  computed from the bytes moved and the transport's wire cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.fabrics import TCPParams
from ..results import ScenarioResult

__all__ = [
    "infer_network_fraction",
    "direct_network_fraction",
    "AmdahlReport",
    "amdahl_report",
]


def infer_network_fraction(
    t_slow_sec: float,
    t_fast_sec: float,
    t_base_sec: float,
    wire_speedup: float,
) -> float:
    """The paper's Amdahl inference.

    Given run times over a slow and a fast wire (same code path), the
    baseline (in-memory) time, and how much faster the fast wire moves
    the workload's messages, solve for the network share of the *slow*
    transport's swap overhead:

    ``overhead = t - t_base``;
    ``overhead_fast = overhead_slow * (1 - f + f / wire_speedup)``
    → ``f = (1 - oh_fast/oh_slow) / (1 - 1/wire_speedup)``.
    """
    if wire_speedup <= 1.0:
        raise ValueError(f"wire_speedup must exceed 1, got {wire_speedup}")
    oh_slow = t_slow_sec - t_base_sec
    oh_fast = t_fast_sec - t_base_sec
    if oh_slow <= 0 or oh_fast <= 0:
        raise ValueError("both transports must show positive swap overhead")
    if oh_fast > oh_slow:
        raise ValueError("the fast transport must not be slower overall")
    return (1.0 - oh_fast / oh_slow) / (1.0 - 1.0 / wire_speedup)


def direct_network_fraction(
    result: ScenarioResult,
    base_result: ScenarioResult,
    wire_usec_of: "callable[[int], float]",
) -> float:
    """Ground-truth network share of the swap overhead for one run.

    ``wire_usec_of(nbytes)`` is the wire-only (serialization + latency)
    cost of one message of that size; host processing is excluded.
    """
    overhead = result.elapsed_usec - base_result.elapsed_usec
    if overhead <= 0:
        raise ValueError("no swap overhead to decompose")
    wire = 0.0
    for _t, _op, nbytes in result.request_trace:
        wire += wire_usec_of(nbytes)
    return min(1.0, wire / overhead)


def tcp_wire_cost(params: TCPParams):
    """Wire-only message cost for a TCP transport (no host terms)."""

    def cost(nbytes: int) -> float:
        return params.wire_latency + params.wire_byte_time * nbytes

    return cost


@dataclass
class AmdahlReport:
    """The §6.2 table: network share per transport."""

    gige_fraction: float
    ipoib_fraction: float
    hpbd_fraction: float

    PAPER_GIGE = 0.48
    PAPER_IPOIB = 0.345
    PAPER_HPBD_BOUND = 0.30

    def rows(self) -> list[tuple[str, float, str]]:
        return [
            ("NBD-GigE", self.gige_fraction, f"{self.PAPER_GIGE:.0%}"),
            ("NBD-IPoIB", self.ipoib_fraction, f"{self.PAPER_IPOIB:.1%}"),
            ("HPBD", self.hpbd_fraction, f"<{self.PAPER_HPBD_BOUND:.0%}"),
        ]


def amdahl_report(
    local: ScenarioResult,
    hpbd: ScenarioResult,
    ipoib: ScenarioResult,
    gige: ScenarioResult,
    gige_params: TCPParams,
    ipoib_params: TCPParams,
    ib_wire_usec_of: "callable[[int], float]",
) -> AmdahlReport:
    """Build the §6.2 decomposition from the four testswap runs."""
    return AmdahlReport(
        gige_fraction=direct_network_fraction(
            gige, local, tcp_wire_cost(gige_params)
        ),
        ipoib_fraction=direct_network_fraction(
            ipoib, local, tcp_wire_cost(ipoib_params)
        ),
        hpbd_fraction=direct_network_fraction(hpbd, local, ib_wire_usec_of),
    )
