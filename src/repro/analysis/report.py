"""Plain-text reporting helpers shared by benches and examples."""

from __future__ import annotations

import json
import os
from collections.abc import Sequence

from ..results import ScenarioResult

__all__ = ["format_table", "comparison_table", "ratio", "write_json_report"]


def write_json_report(path: str, payload: dict) -> None:
    """Write a machine-readable report: atomic (temp file + rename, so a
    crashed run never leaves a half-written artifact) with stable key
    order and a trailing newline — byte-identical for identical
    payloads, which is what ``--replay-check`` diffs against.

    Shared by ``repro critpath --json``, ``repro health``, and anything
    else emitting a report a CI gate consumes.

    NaN/Inf are rejected (``ValueError``) rather than serialized as the
    non-standard ``NaN``/``Infinity`` literals JSON parsers disagree on;
    a rejected payload leaves no temp file behind.
    """
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True, allow_nan=False)
            fh.write("\n")
    except ValueError:
        os.unlink(tmp)
        raise
    os.replace(tmp, path)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width text table (no external deps, stable for diffing)."""
    cols = len(headers)
    for row in rows:
        if len(row) != cols:
            raise ValueError(f"row {row!r} does not match {cols} headers")
    cells = [[str(h) for h in headers]] + [
        [_fmt(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(cols)]
    out = []
    for j, row in enumerate(cells):
        out.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        if j == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def ratio(a: ScenarioResult, b: ScenarioResult) -> float:
    """a's run time as a multiple of b's."""
    return a.elapsed_usec / b.elapsed_usec


def comparison_table(
    results: Sequence[ScenarioResult],
    baseline_label: str = "local",
    paper: dict[str, float] | None = None,
) -> str:
    """Execution-time table with slowdowns vs a baseline and, when
    given, the paper's numbers side by side."""
    base = next((r for r in results if r.label == baseline_label), None)
    headers = ["device", "time (s)", "vs " + baseline_label]
    if paper:
        headers += ["paper (s)", "paper ratio"]
    rows = []
    for r in results:
        row: list[object] = [r.label, r.elapsed_sec]
        row.append(r.elapsed_usec / base.elapsed_usec if base else float("nan"))
        if paper:
            p = paper.get(r.label)
            pb = paper.get(baseline_label)
            row.append(p if p is not None else "-")
            row.append(p / pb if (p and pb) else "-")
        rows.append(row)
    return format_table(headers, rows)
