"""Fig. 6: average request size per request *cluster*.

The paper profiles testswap's block requests and groups them into
clusters — bursts of requests close together in time (one kswapd
reclaim wave produces one cluster).  Fig. 6 plots the average request
size of each successive cluster, showing testswap "involves mostly …
messages around 120K".

``cluster_requests`` reproduces that grouping from a request trace:
requests whose dispatch times are within ``gap_usec`` of their
predecessor share a cluster.
"""

from __future__ import annotations

from dataclasses import dataclass


__all__ = ["RequestCluster", "cluster_requests", "size_histogram"]


@dataclass(frozen=True)
class RequestCluster:
    """One burst of near-simultaneous block requests."""

    index: int
    start_usec: float
    end_usec: float
    count: int
    total_bytes: int

    @property
    def mean_bytes(self) -> float:
        return self.total_bytes / self.count


def cluster_requests(
    trace: list[tuple[float, str, int]],
    gap_usec: float = 2_000.0,
    op: str | None = None,
) -> list[RequestCluster]:
    """Group a ``(time, op, nbytes)`` trace into clusters.

    ``op`` filters to one direction ("read"/"write"); ``None`` keeps
    both.  A new cluster starts whenever the inter-request gap exceeds
    ``gap_usec``.
    """
    if gap_usec <= 0:
        raise ValueError(f"gap must be positive, got {gap_usec}")
    rows = [(t, n) for (t, o, n) in trace if op is None or o == op]
    rows.sort(key=lambda r: r[0])
    clusters: list[RequestCluster] = []
    if not rows:
        return clusters
    start = prev = rows[0][0]
    count = 0
    total = 0
    for t, nbytes in rows:
        if t - prev > gap_usec and count:
            clusters.append(
                RequestCluster(len(clusters), start, prev, count, total)
            )
            start = t
            count = 0
            total = 0
        count += 1
        total += nbytes
        prev = t
    clusters.append(RequestCluster(len(clusters), start, prev, count, total))
    return clusters


def size_histogram(
    trace: list[tuple[float, str, int]], op: str | None = None
) -> dict[int, int]:
    """Request-size → count histogram (exact sizes, bytes)."""
    out: dict[int, int] = {}
    for _t, o, nbytes in trace:
        if op is None or o == op:
            out[nbytes] = out.get(nbytes, 0) + 1
    return dict(sorted(out.items()))
