"""Self-contained HTML campaign dashboard (no external deps).

``repro report --campaign`` renders one static HTML file: per-metric
CI-band charts across the sweep grid, per-tenant SLO burn timelines
from the health reports embedded in the records, a full stats table
(the accessible table-view twin of every chart), and — when a baseline
campaign is supplied — the run-to-run diff table.

Everything is inline (CSS + SVG), deterministic for a fixed campaign
store (stable iteration order, fixed float formatting, no timestamps),
and byte-identical across renders — ``--replay-check`` diffs two
renders to prove it.

Chart conventions follow the repo-wide viz rules: single-series charts
carry no legend (the title names the series); multi-series timelines
get a legend and at most the three all-pairs-validated categorical
hues before folding; marks are thin (2px lines, r=4 markers with a 2px
surface ring); grid/axes are solid hairlines; text wears ink tokens,
never the series color; every value is also in the stats table, so
nothing is gated behind hover.
"""

from __future__ import annotations

import math
from html import escape

from ..obs.campaign import RunRecord
from .campaign import CampaignSummary
from .compare import CompareReport

__all__ = ["render_campaign_html"]

#: categorical series slots available in the CSS (validated reference
#: palette; the first three are all-pairs CVD-safe, which is the cap
#: before extra series fold onto the last slot)
_NSERIES = 3

_CSS = """\
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --good: #0ca30c; --critical: #d03b3b; --warning: #fab219;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  }
}
body { margin: 0; padding: 24px; background: var(--page); color: var(--ink-1);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
h2 { font-size: 15px; font-weight: 600; margin: 28px 0 8px; }
.meta { color: var(--ink-2); margin-bottom: 16px; }
.card { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin: 12px 0; }
.card h3 { font-size: 13px; font-weight: 600; margin: 0 0 8px;
  color: var(--ink-2); }
svg text { fill: var(--ink-muted); font: 11px system-ui, sans-serif; }
svg .tick { font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th { text-align: left; color: var(--ink-2); font-weight: 600; }
th, td { padding: 4px 10px 4px 0; border-bottom: 1px solid var(--grid); }
td.num { font-variant-numeric: tabular-nums; }
.key { display: inline-block; width: 10px; height: 10px; border-radius: 5px;
  margin-right: 6px; vertical-align: baseline; }
.legend { color: var(--ink-2); font-size: 12px; margin: 4px 0 0; }
.legend span { margin-right: 16px; }
.verdict-regression { color: var(--critical); font-weight: 600; }
.verdict-improvement { color: var(--good); font-weight: 600; }
.verdict-shift { color: var(--ink-2); }
.note { color: var(--ink-muted); font-size: 13px; }
"""


def _fmt(value: float) -> str:
    """Stable human formatting (fixed precision, no locale)."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "–"
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.4g}"


def _c(value: float) -> str:
    """SVG coordinate: fixed 2-decimal formatting for byte stability."""
    return f"{value:.2f}"


def _nice_ticks(lo: float, hi: float, nticks: int = 5) -> list[float]:
    """Clean 1/2/5-step tick values covering [lo, hi]."""
    if hi <= lo:
        return [lo]
    span = hi - lo
    raw = span / max(nticks - 1, 1)
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 5.0, 10.0):
        step = mag * mult
        if step >= raw:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-9 * span:
        ticks.append(0.0 if abs(t) < step * 1e-9 else t)
        t += step
    return ticks


def _short(name: str, limit: int = 24) -> str:
    return name if len(name) <= limit else "…" + name[-(limit - 1):]


def _ci_band_chart(points: list[str], stats: list, title: str) -> str:
    """One metric across the grid: CI band + mean line + markers.

    Single series — no legend; identity is the card title.  Every
    marker carries a native ``<title>`` tooltip, and the full numbers
    live in the stats table below (tooltips never gate).
    """
    width, height = 720, 250
    ml, mr, mt, mb = 70, 16, 12, 72
    plot_w, plot_h = width - ml - mr, height - mt - mb
    hi = max((s.ci_hi for s in stats), default=0.0)
    if hi <= 0:
        hi = 1.0
    top = hi * 1.05
    ticks = _nice_ticks(0.0, top)

    def x(i: int) -> float:
        if len(points) == 1:
            return ml + plot_w / 2.0
        return ml + plot_w * i / (len(points) - 1)

    def y(v: float) -> float:
        return mt + plot_h * (1.0 - v / top)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="{escape(title)}">'
    ]
    for t in ticks:
        yy = _c(y(t))
        parts.append(
            f'<line x1="{ml}" y1="{yy}" x2="{width - mr}" y2="{yy}" '
            f'stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text class="tick" x="{ml - 8}" y="{yy}" dy="4" '
            f'text-anchor="end">{escape(_fmt(t))}</text>'
        )
    parts.append(
        f'<line x1="{ml}" y1="{_c(y(0.0))}" x2="{width - mr}" '
        f'y2="{_c(y(0.0))}" stroke="var(--axis)" stroke-width="1"/>'
    )
    # CI band: upper edge left-to-right, lower edge back.
    band = [f"{_c(x(i))},{_c(y(s.ci_hi))}" for i, s in enumerate(stats)]
    band += [
        f"{_c(x(i))},{_c(y(s.ci_lo))}"
        for i, s in reversed(list(enumerate(stats)))
    ]
    parts.append(
        f'<polygon points="{" ".join(band)}" fill="var(--series-1)" '
        f'fill-opacity="0.10"/>'
    )
    mean_pts = " ".join(
        f"{_c(x(i))},{_c(y(s.mean))}" for i, s in enumerate(stats)
    )
    parts.append(
        f'<polyline points="{mean_pts}" fill="none" '
        f'stroke="var(--series-1)" stroke-width="2" '
        f'stroke-linejoin="round" stroke-linecap="round"/>'
    )
    for i, s in enumerate(stats):
        tip = (
            f"{points[i]}: mean {_fmt(s.mean)} "
            f"[{_fmt(s.ci_lo)}, {_fmt(s.ci_hi)}], n={s.n}"
        )
        parts.append(
            f'<circle cx="{_c(x(i))}" cy="{_c(y(s.mean))}" r="4" '
            f'fill="var(--series-1)" stroke="var(--surface-1)" '
            f'stroke-width="2"><title>{escape(tip)}</title></circle>'
        )
        lx, ly = _c(x(i)), _c(mt + plot_h + 12)
        parts.append(
            f'<text x="{lx}" y="{ly}" text-anchor="end" '
            f'transform="rotate(-30 {lx} {ly})">'
            f"{escape(_short(points[i]))}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _slot_color(slot: int) -> str:
    """Categorical color for a series slot; past the validated 3-slot
    prefix the palette can't guarantee separation, so extra entities
    fold into muted ink (and stay identifiable via their tooltips)."""
    if slot >= _NSERIES:
        return "var(--ink-muted)"
    return f"var(--series-{slot + 1})"


def _burn_chart(
    series: "dict[str, list[tuple[float, float]]]",
    slots: "dict[str, int]",
    title: str,
) -> str:
    """Per-tenant SLO burn-rate timeline (µs → s on the x axis).

    Color follows the *tenant* (``slots`` maps series name → tenant
    slot), so a tenant's seed-replica lines share a hue and the seed
    lives in the tooltip, not the palette."""
    width, height = 720, 220
    ml, mr, mt, mb = 70, 16, 12, 36
    plot_w, plot_h = width - ml - mr, height - mt - mb
    all_pts = [p for pts in series.values() for p in pts]
    t_hi = max((p[0] for p in all_pts), default=1.0) or 1.0
    b_hi = max((p[1] for p in all_pts), default=1.0) or 1.0
    top = b_hi * 1.05
    ticks = _nice_ticks(0.0, top, 4)
    xticks = _nice_ticks(0.0, t_hi / 1e6, 6)

    def x(t_usec: float) -> float:
        return ml + plot_w * t_usec / t_hi

    def y(v: float) -> float:
        return mt + plot_h * (1.0 - v / top)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="{escape(title)}">'
    ]
    for t in ticks:
        yy = _c(y(t))
        parts.append(
            f'<line x1="{ml}" y1="{yy}" x2="{width - mr}" y2="{yy}" '
            f'stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text class="tick" x="{ml - 8}" y="{yy}" dy="4" '
            f'text-anchor="end">{escape(_fmt(t))}</text>'
        )
    for ts in xticks:
        if ts * 1e6 > t_hi:
            continue
        xx = _c(x(ts * 1e6))
        parts.append(
            f'<text class="tick" x="{xx}" y="{mt + plot_h + 16}" '
            f'text-anchor="middle">{escape(_fmt(ts))}s</text>'
        )
    parts.append(
        f'<line x1="{ml}" y1="{_c(y(0.0))}" x2="{width - mr}" '
        f'y2="{_c(y(0.0))}" stroke="var(--axis)" stroke-width="1"/>'
    )
    for name, pts in sorted(series.items()):
        color = _slot_color(slots.get(name, _NSERIES))
        line = " ".join(f"{_c(x(t))},{_c(y(b))}" for t, b in pts)
        parts.append(
            f'<polyline points="{line}" fill="none" stroke="{color}" '
            f'stroke-width="2" stroke-linejoin="round" '
            f'stroke-linecap="round"><title>{escape(name)}</title>'
            f"</polyline>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _legend(entries: "list[tuple[str, int]]") -> str:
    spans = []
    for name, slot in entries:
        spans.append(
            f'<span><i class="key" style="background:{_slot_color(slot)}">'
            f"</i>{escape(name)}</span>"
        )
    return f'<p class="legend">{"".join(spans)}</p>'


#: metrics charted by default (beyond every sketch p99): run time plus
#: the cluster fairness scalar
_CHART_SCALARS = ("elapsed_usec", "spread")


def _chart_metrics(summary: CampaignSummary) -> list[str]:
    metrics: set[str] = set()
    for stats in summary.groups.values():
        for name in stats:
            if name in _CHART_SCALARS or name.endswith(".p99"):
                metrics.add(name)
    return sorted(metrics)


def render_campaign_html(
    summary: CampaignSummary,
    records: "list[RunRecord]",
    *,
    against: "CampaignSummary | None" = None,
    compare_report: "CompareReport | None" = None,
    title: str = "Campaign report",
) -> str:
    """The complete dashboard as one HTML string (deterministic)."""
    out: list[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
    ]
    commits = sorted(
        {r.git_commit[:12] for r in records if r.git_commit}
    )
    schedulers = sorted({r.scheduler for r in records})
    seeds = sorted({r.seed for r in records})
    out.append(
        '<p class="meta">'
        f"{summary.nrecords} records · {len(summary.points)} points · "
        f"seeds {', '.join(str(s) for s in seeds)} · "
        f"{int(summary.ci_level * 100)}% CI ({escape(summary.method)}) · "
        f"scheduler {escape('/'.join(schedulers) or '?')} · "
        f"commit {escape('/'.join(commits) or 'unknown')}"
        "</p>"
    )

    # -- per-metric CI bands across the grid ---------------------------
    out.append("<h2>Cross-seed metrics (mean with CI band)</h2>")
    for metric in _chart_metrics(summary):
        points = [
            p for p in summary.points if metric in summary.groups[p]
        ]
        if not points:
            continue
        stats = [summary.groups[p][metric] for p in points]
        out.append('<div class="card">')
        out.append(f"<h3>{escape(metric)}</h3>")
        out.append(_ci_band_chart(points, stats, metric))
        out.append("</div>")

    # -- per-tenant SLO burn timelines ---------------------------------
    out.append("<h2>SLO burn timelines</h2>")
    burn_cards = 0
    by_point: dict[str, list[RunRecord]] = {}
    for record in records:
        by_point.setdefault(record.point, []).append(record)
    for point in sorted(by_point):
        series: dict[str, list[tuple[float, float]]] = {}
        tenant_of: dict[str, str] = {}
        for record in sorted(by_point[point], key=lambda r: r.seed):
            for entry in record.health.get("burn_timeline", []):
                key = f"{entry['tenant']} (seed {record.seed})"
                tenant_of[key] = entry["tenant"]
                series.setdefault(key, []).append(
                    (float(entry["t_usec"]), float(entry["burn_rate"]))
                )
        if not series:
            continue
        # color follows the tenant; the seed replica lives in the
        # tooltip, so the legend carries one entry per tenant
        tenants = sorted(set(tenant_of.values()))
        tenant_slot = {t: i for i, t in enumerate(tenants)}
        slots = {k: tenant_slot[tenant_of[k]] for k in series}
        burn_cards += 1
        out.append('<div class="card">')
        out.append(
            f"<h3>{escape(point)} — burn rate over time "
            f"(one line per seed)</h3>"
        )
        out.append(_burn_chart(series, slots, f"{point} SLO burn"))
        out.append(_legend([(t, tenant_slot[t]) for t in tenants]))
        out.append("</div>")
    if not burn_cards:
        out.append(
            '<p class="note">No SLO burn recorded — every tenant stayed '
            "inside its error budget.</p>"
        )

    # -- run-to-run diff table -----------------------------------------
    if compare_report is not None:
        out.append("<h2>Run-to-run diff</h2>")
        out.append('<div class="card">')
        out.append(
            '<p class="meta">'
            f"{len(compare_report.regressions)} regressions · "
            f"{len(compare_report.improvements)} improvements · "
            f"{len(compare_report.shifts)} shifts · threshold "
            f"{compare_report.threshold:.0%}</p>"
        )
        rows = [
            d for d in compare_report.deltas if d.kind != "ok"
        ]
        if rows:
            out.append(
                "<table><thead><tr><th>point</th><th>metric</th>"
                "<th>base</th><th>test</th><th>change</th>"
                "<th>verdict</th></tr></thead><tbody>"
            )
            for d in rows:
                out.append(
                    f"<tr><td>{escape(d.point)}</td>"
                    f"<td>{escape(d.metric)}</td>"
                    f'<td class="num">{escape(_fmt(d.base.mean))}</td>'
                    f'<td class="num">{escape(_fmt(d.test.mean))}</td>'
                    f'<td class="num">{d.rel_change:+.1%}</td>'
                    f'<td class="verdict-{d.kind}">{escape(d.kind)}</td>'
                    "</tr>"
                )
            out.append("</tbody></table>")
        else:
            out.append('<p class="note">No significant changes.</p>')
        out.append("</div>")

    # -- full stats table (the table-view twin of every chart) ---------
    out.append("<h2>All aggregates</h2>")
    out.append('<div class="card"><table><thead><tr>')
    out.append(
        "<th>point</th><th>metric</th><th>n</th><th>mean</th>"
        "<th>ci lo</th><th>ci hi</th><th>pooled</th>"
    )
    out.append("</tr></thead><tbody>")
    for point in summary.points:
        for metric in summary.metrics(point):
            s = summary.groups[point][metric]
            pooled = _fmt(s.pooled) if s.pooled is not None else "–"
            out.append(
                f"<tr><td>{escape(point)}</td><td>{escape(metric)}</td>"
                f'<td class="num">{s.n}</td>'
                f'<td class="num">{escape(_fmt(s.mean))}</td>'
                f'<td class="num">{escape(_fmt(s.ci_lo))}</td>'
                f'<td class="num">{escape(_fmt(s.ci_hi))}</td>'
                f'<td class="num">{escape(pooled)}</td></tr>'
            )
    out.append("</tbody></table></div>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"
