"""Measured §6.2 latency breakdown, built from recorded trace spans.

:mod:`repro.analysis.amdahl` infers the network share of the swap
overhead from run-time arithmetic (the paper's method — it only needs a
stopwatch).  This module computes the same decomposition *directly*, by
summing the spans a traced run recorded at every layer
(``run_scenario(cfg, trace=True)``), and cross-checks the two: the
measured time-on-the-wire should agree with the cost model the Amdahl
calculator assumes.

Span categories are aggregated into the paper's stages:

===============  =====================================================
stage            trace categories
===============  =====================================================
block queue      ``blk.queue`` (plug/merge/elevator wait)
device wait      ``blk.wait`` (dispatched, driver busy — head-of-line)
driver copy      ``hpbd.copy`` (pool copy-in/copy-out)
registration     ``reg`` (request-path MR register/deregister)
flow control     ``hpbd.credit`` + ``hpbd.pool`` (water-mark waits)
port wait        ``net.wait`` (tx/rx port queueing)
wire             ``wire`` (data serialization + latency)
control msgs     ``ctrl`` (request/reply control messages)
server host      ``srv.copy`` (RamDisk memcpy on the server)
disk mechanism   ``disk.service`` (seek + rotation + media transfer)
===============  =====================================================

Stages are *aggregate busy/wait time* across concurrent requests, so
they are not additive toward wall time; fractions are reported against
the swap overhead (traced run minus in-memory baseline), matching how
§6.2 reports the network share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..results import ScenarioResult
from .report import format_table

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.trace import TraceRecorder

__all__ = [
    "STAGES",
    "StageTotal",
    "stage_totals",
    "measured_breakdown",
    "measured_network_fraction",
    "wire_crosscheck",
    "format_breakdown",
]

#: stage name -> the trace categories it aggregates, §6.2 order
STAGES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("block queue", ("blk.queue",)),
    ("device wait", ("blk.wait",)),
    ("driver copy", ("hpbd.copy",)),
    ("registration", ("reg",)),
    ("flow control", ("hpbd.credit", "hpbd.pool")),
    ("port wait", ("net.wait",)),
    ("wire", ("wire",)),
    ("control msgs", ("ctrl",)),
    ("server host", ("srv.copy",)),
    ("disk mechanism", ("disk.service",)),
)


@dataclass
class StageTotal:
    """One row of the measured decomposition."""

    stage: str
    usec: float
    #: share of the swap overhead (NaN-free: 0 when no baseline given)
    fraction: float


def _recorder_of(result: "ScenarioResult | TraceRecorder") -> "TraceRecorder":
    rec = getattr(result, "trace", result)
    if rec is None or not getattr(rec, "enabled", False):
        raise ValueError(
            "no trace recorded: run the scenario with trace=True"
        )
    return rec


def stage_totals(result: "ScenarioResult | TraceRecorder") -> dict[str, float]:
    """Total span time per trace category (µs)."""
    return _recorder_of(result).stage_usec()


def measured_breakdown(
    result: ScenarioResult,
    base_result: ScenarioResult | None = None,
) -> list[StageTotal]:
    """Aggregate a traced run's spans into the §6.2 stages.

    With ``base_result`` (the in-memory run of the same workload),
    fractions are relative to the swap overhead; without it they are 0.
    """
    cats = stage_totals(result)
    overhead = 0.0
    if base_result is not None:
        overhead = result.elapsed_usec - base_result.elapsed_usec
        if overhead <= 0:
            raise ValueError("no swap overhead to decompose")
    rows = []
    for stage, keys in STAGES:
        usec = sum(cats.get(k, 0.0) for k in keys)
        if usec == 0.0:
            continue  # stage absent on this transport (e.g. disk vs HPBD)
        rows.append(
            StageTotal(stage, usec, usec / overhead if overhead else 0.0)
        )
    return rows


def measured_network_fraction(
    result: ScenarioResult, base_result: ScenarioResult
) -> float:
    """Measured counterpart of
    :func:`repro.analysis.amdahl.direct_network_fraction`: time the
    payload actually spent serializing onto / flying over the wire,
    as a share of the swap overhead."""
    overhead = result.elapsed_usec - base_result.elapsed_usec
    if overhead <= 0:
        raise ValueError("no swap overhead to decompose")
    wire = stage_totals(result).get("wire", 0.0)
    return min(1.0, wire / overhead)


def wire_crosscheck(
    result: ScenarioResult,
    wire_usec_of: Callable[[int], float],
) -> tuple[float, float, float]:
    """Compare measured wire time against the Amdahl cost model.

    Returns ``(measured_usec, modeled_usec, relative_error)`` where the
    model applies ``wire_usec_of(nbytes)`` to every dispatched request
    (exactly what :func:`direct_network_fraction` integrates).  A small
    relative error means the stopwatch method and the trace agree.
    """
    measured = stage_totals(result).get("wire", 0.0)
    modeled = sum(wire_usec_of(nbytes) for _t, _op, nbytes in result.request_trace)
    if modeled <= 0:
        raise ValueError("model predicts no wire time (empty request trace?)")
    return measured, modeled, abs(measured - modeled) / modeled


def format_breakdown(rows: list[StageTotal]) -> str:
    """Render the decomposition as the usual fixed-width table."""
    body = [
        [r.stage, r.usec / 1e3, f"{r.fraction:.1%}" if r.fraction else "-"]
        for r in rows
    ]
    return format_table(["stage", "time (ms)", "share of overhead"], body)
