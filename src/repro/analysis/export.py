"""Export experiment data as CSV for external plotting.

Each paper figure maps to one CSV with the obvious columns; files are
deterministic (no timestamps) so they diff cleanly across runs.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

from ..results import ScenarioResult
from .reqsize import cluster_requests

__all__ = [
    "series_to_csv",
    "results_to_csv",
    "clusters_to_csv",
    "trace_to_csv",
    "write_csv",
]


def write_csv(path: str | Path, header: Sequence[str], rows) -> Path:
    """Write rows to ``path`` (parent directories created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def series_to_csv(data: Mapping[str, np.ndarray], x_key: str = "sizes") -> str:
    """Fig. 1 / Fig. 3-style dict of parallel arrays → CSV text."""
    if x_key not in data:
        raise KeyError(f"missing x column {x_key!r}")
    keys = [x_key] + sorted(k for k in data if k != x_key)
    n = len(data[x_key])
    for k in keys:
        if len(data[k]) != n:
            raise ValueError(f"column {k!r} length {len(data[k])} != {n}")
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(keys)
    for i in range(n):
        writer.writerow([data[k][i] for k in keys])
    return buf.getvalue()


def results_to_csv(results: Sequence[ScenarioResult]) -> str:
    """Per-device scenario results → CSV text (Fig. 5/7/8 shape)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["device", "elapsed_sec", "swapout_pages", "swapin_pages",
         "mean_write_request", "mean_read_request"]
    )
    for r in results:
        writer.writerow([
            r.label, f"{r.elapsed_sec:.6f}", r.swapout_pages, r.swapin_pages,
            f"{r.mean_write_request:.1f}", f"{r.mean_read_request:.1f}",
        ])
    return buf.getvalue()


def clusters_to_csv(
    trace: list[tuple[float, str, int]], gap_usec: float = 2_000.0,
    op: str | None = "write",
) -> str:
    """Fig. 6 shape: per-cluster average request sizes → CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["cluster", "start_usec", "count", "mean_bytes"])
    for c in cluster_requests(trace, gap_usec=gap_usec, op=op):
        writer.writerow(
            [c.index, f"{c.start_usec:.1f}", c.count, f"{c.mean_bytes:.0f}"]
        )
    return buf.getvalue()


def trace_to_csv(trace: list[tuple[float, str, int]]) -> str:
    """Raw request trace → CSV text (time, op, bytes)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["dispatch_usec", "op", "nbytes"])
    for t, op, nbytes in trace:
        writer.writerow([f"{t:.1f}", op, nbytes])
    return buf.getvalue()
