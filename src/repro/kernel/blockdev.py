"""Block layer: bios, request merging, plugging, and the elevator.

This is where the paper's Fig. 6 comes from.  The VM submits *bios* (one
page each); the request queue coalesces adjacent-sector bios of the same
direction into *requests* of up to 128 KiB (the Linux 2.4 ceiling), and
holds a *plug* briefly so a reclaim batch arriving over a few tens of
microseconds merges into a single large request.  The queue unplugs when

* the plug timer expires,
* enough requests have accumulated, or
* someone blocks waiting for a bio (the 2.4 ``run_task_queue(&tq_disk)``
  on the page-fault path),

and dispatches pending requests in ascending-sector (one-way elevator)
order to the driver.

Drivers (HPBD client, NBD client, local disk) consume requests from
:meth:`RequestQueue.next_request` and call :meth:`RequestQueue.complete`.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from ..simulator import Event, SimulationError, Simulator, StatsRegistry
from ..units import MAX_REQUEST_SECTORS, SECTOR_SIZE

__all__ = ["READ", "WRITE", "Bio", "BlockRequest", "RequestQueue"]

READ = "read"
WRITE = "write"

_bio_ids = itertools.count(1)
_req_ids = itertools.count(1)


@dataclass
class Bio:
    """One unit of block I/O from the VM (a page, for swap traffic)."""

    op: str
    sector: int
    nsectors: int
    done: Event
    submit_time: float = 0.0
    bio_id: int = field(default_factory=lambda: next(_bio_ids))

    def __post_init__(self) -> None:
        if self.op not in (READ, WRITE):
            raise ValueError(f"bad bio op {self.op!r}")
        if self.nsectors < 1 or self.sector < 0:
            raise ValueError(f"bad bio geometry {self.sector}+{self.nsectors}")

    @property
    def end_sector(self) -> int:
        return self.sector + self.nsectors

    @property
    def nbytes(self) -> int:
        return self.nsectors * SECTOR_SIZE


@dataclass
class BlockRequest:
    """A merged run of bios, contiguous in sector space, one direction."""

    op: str
    sector: int
    nsectors: int
    bios: list[Bio]
    req_id: int = field(default_factory=lambda: next(_req_ids))
    dispatch_time: float = 0.0

    @property
    def end_sector(self) -> int:
        return self.sector + self.nsectors

    @property
    def nbytes(self) -> int:
        return self.nsectors * SECTOR_SIZE

    def can_back_merge(self, bio: Bio, max_sectors: int) -> bool:
        return (
            bio.op == self.op
            and bio.sector == self.end_sector
            and self.nsectors + bio.nsectors <= max_sectors
        )

    def can_front_merge(self, bio: Bio, max_sectors: int) -> bool:
        return (
            bio.op == self.op
            and bio.end_sector == self.sector
            and self.nsectors + bio.nsectors <= max_sectors
        )


class RequestQueue:
    """Per-device request queue with plug/merge/elevator behaviour."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity_sectors: int,
        stats: StatsRegistry | None = None,
        max_sectors: int = MAX_REQUEST_SECTORS,
        plug_delay: float = 100.0,
        unplug_threshold: int = 4,
    ) -> None:
        self.sim = sim
        self.name = name
        self.capacity_sectors = capacity_sectors
        self.stats = stats if stats is not None else StatsRegistry()
        self.max_sectors = max_sectors
        self.plug_delay = plug_delay
        self.unplug_threshold = unplug_threshold
        self._pending: list[BlockRequest] = []  # plugged, merge candidates
        #: unplugged requests awaiting the driver; reads before writes
        #: (the 2.4 elevator's read-latency bias), each in elevator order.
        self._ready_reads: list[BlockRequest] = []
        self._ready_writes: list[BlockRequest] = []
        self._getters: "deque[Event]" = deque()
        self._plugged = False
        self._plug_seq = 0  # invalidates stale plug timers
        self._last_dispatch_sector = 0
        self.in_flight = 0  # dispatched but not completed (requests)
        # trace of (time, op, nbytes) per dispatched request — Fig. 6 input
        self._size_tally_read = self.stats.tally(f"{name}.req_bytes.read")
        self._size_tally_write = self.stats.tally(f"{name}.req_bytes.write")
        self._req_trace: list[tuple[float, str, int]] = []
        self.bio_count = 0
        self.merge_count = 0
        self.bios_completed = 0
        # high-water marks, reported to sim.monitors at teardown
        self.max_in_flight = 0
        self.max_dispatch_depth = 0

    # -- submission (VM side) ----------------------------------------------

    def submit_bio(self, bio: Bio) -> Event:
        """Queue one bio; returns its completion event."""
        if bio.end_sector > self.capacity_sectors:
            raise SimulationError(
                f"{self.name}: bio beyond device end "
                f"({bio.end_sector} > {self.capacity_sectors})"
            )
        bio.submit_time = self.sim.now
        self.bio_count += 1
        for req in self._pending:
            if req.can_back_merge(bio, self.max_sectors):
                req.bios.append(bio)
                req.nsectors += bio.nsectors
                self.merge_count += 1
                break
            if req.can_front_merge(bio, self.max_sectors):
                req.bios.insert(0, bio)
                req.sector = bio.sector
                req.nsectors += bio.nsectors
                self.merge_count += 1
                break
        else:
            self._pending.append(
                BlockRequest(
                    op=bio.op, sector=bio.sector, nsectors=bio.nsectors, bios=[bio]
                )
            )
            self._plug()
        if len(self._pending) >= self.unplug_threshold:
            self.unplug()
        return bio.done

    def _plug(self) -> None:
        if self._plugged:
            return
        self._plugged = True
        self._plug_seq += 1
        seq = self._plug_seq

        def timer_fire() -> None:
            if self._plugged and self._plug_seq == seq:
                self.unplug()

        self.sim.schedule_call(self.plug_delay, timer_fire)

    def unplug(self) -> None:
        """Flush pending requests toward the driver in elevator order."""
        self._plugged = False
        if self._pending:
            # One-way elevator: ascending from the last dispatched
            # sector, wrapping (C-SCAN), per direction.
            key = self._last_dispatch_sector

            def order(req: BlockRequest) -> tuple[int, int]:
                return (0 if req.sector >= key else 1, req.sector)

            trace = self.sim.trace
            for req in self._pending:
                req.dispatch_time = self.sim.now
                self.in_flight += 1
                if self.in_flight > self.max_in_flight:
                    self.max_in_flight = self.in_flight
                tally = (
                    self._size_tally_read
                    if req.op == READ
                    else self._size_tally_write
                )
                tally.record(req.nbytes)
                self._req_trace.append((self.sim.now, req.op, req.nbytes))
                if trace.enabled:
                    # Plug/merge wait: first bio submitted -> dispatch.
                    trace.complete(
                        self.name, "queue", "queue_wait", "blk.queue",
                        min(b.submit_time for b in req.bios), self.sim.now,
                        req_id=req.req_id, op=req.op, sector=req.sector,
                        nbytes=req.nbytes, nbios=len(req.bios),
                    )
                if req.op == READ:
                    self._ready_reads.append(req)
                else:
                    self._ready_writes.append(req)
            self._pending.clear()
            self._ready_reads.sort(key=order)
            self._ready_writes.sort(key=order)
            if self.dispatch_depth > self.max_dispatch_depth:
                self.max_dispatch_depth = self.dispatch_depth
        while self._getters and (self._ready_reads or self._ready_writes):
            self._getters.popleft().succeed(self._pop_ready())

    def _pop_ready(self) -> BlockRequest:
        queue = self._ready_reads if self._ready_reads else self._ready_writes
        req = queue.pop(0)
        self._last_dispatch_sector = req.end_sector
        trace = self.sim.trace
        if trace.enabled and self.sim.now > req.dispatch_time:
            # Device-queue wait: dispatched but the driver was busy with
            # earlier requests (head-of-line at the device).
            trace.complete(
                self.name, "queue", "device_wait", "blk.wait",
                req.dispatch_time, self.sim.now,
                req_id=req.req_id, op=req.op, sector=req.sector,
                nbytes=req.nbytes,
            )
        return req

    # -- driver side ---------------------------------------------------------

    def next_request(self) -> Event:
        """Event yielding the next request, reads preferred (2.4
        elevator read bias)."""
        evt = Event(self.sim, name=f"{self.name}.next")
        if self._ready_reads or self._ready_writes:
            evt.succeed(self._pop_ready())
        else:
            self._getters.append(evt)
        return evt

    def try_next_request(self) -> BlockRequest | None:
        if self._ready_reads or self._ready_writes:
            return self._pop_ready()
        return None

    @property
    def dispatch_depth(self) -> int:
        return len(self._ready_reads) + len(self._ready_writes)

    def complete(self, req: BlockRequest) -> None:
        """Finish a request: completes every merged bio's event."""
        self.in_flight -= 1
        if self.in_flight < 0:
            self.sim.monitors.violation(
                "blk.in_flight", self.name,
                "completed more requests than dispatched",
                in_flight=self.in_flight,
            )
            raise SimulationError(f"{self.name}: completed more than dispatched")
        now = self.sim.now
        lat = self.stats.tally(f"{self.name}.req_latency_usec")
        lat.record(now - req.dispatch_time)
        trace = self.sim.trace
        if trace.enabled:
            trace.complete(
                self.name, "inflight", "service", "blk.service",
                req.dispatch_time, now,
                req_id=req.req_id, op=req.op, sector=req.sector,
                nbytes=req.nbytes,
            )
        for bio in req.bios:
            bio.done.succeed(bio)
        self.bios_completed += len(req.bios)

    def audit_teardown(self) -> None:
        """Invariant monitors for a quiesced queue (runner teardown):
        drained at every stage, bio conservation, watermarks recorded."""
        monitors = self.sim.monitors
        monitors.check(
            self.in_flight == 0,
            "blk.drained", self.name,
            "requests still in flight at teardown",
            in_flight=self.in_flight,
        )
        monitors.check(
            not self._pending and self.dispatch_depth == 0,
            "blk.drained", self.name,
            "requests still queued at teardown",
            pending=len(self._pending), ready=self.dispatch_depth,
        )
        monitors.check(
            self.bios_completed == self.bio_count,
            "blk.bio_conservation", self.name,
            "submitted and completed bio counts differ",
            submitted=self.bio_count, completed=self.bios_completed,
        )
        monitors.watermark(f"{self.name}.in_flight", self.max_in_flight)
        monitors.watermark(
            f"{self.name}.dispatch_depth", self.max_dispatch_depth
        )

    # -- analysis hooks ---------------------------------------------------

    def request_trace(self) -> list[tuple[float, str, int]]:
        """(dispatch_time, op, nbytes) per request, in dispatch order."""
        return list(self._req_trace)
