"""Swap-slot management: per-device slot maps with cluster allocation.

Linux 2.4 allocates swap slots by scanning ``swap_map`` for free
*clusters* so that pages written out together land on contiguous device
blocks.  That contiguity is what lets the block layer merge page-outs
into the ~120 KiB requests the paper profiles in Fig. 6 — so the cluster
scan is modelled faithfully (vectorized run-search over a boolean map).

Each slot also records its owner ``(address space, page)`` — the reverse
map swap read-ahead needs to bring neighbouring slots in with a fault.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..simulator import SimulationError
from ..units import SECTORS_PER_PAGE

if TYPE_CHECKING:  # pragma: no cover
    from .blockdev import RequestQueue
    from .vmm import AddressSpace

__all__ = ["SwapArea", "SwapManager", "OutOfSwap"]


class OutOfSwap(SimulationError):
    """No free swap slots remain on any device."""


class SwapArea:
    """One swap device's slot space (1 slot = 1 page = 8 sectors)."""

    def __init__(self, queue: "RequestQueue", nslots: int, priority: int, name: str) -> None:
        if nslots < 1:
            raise ValueError(f"swap area needs at least 1 slot, got {nslots}")
        self.queue = queue
        self.nslots = nslots
        self.priority = priority
        self.name = name
        self._in_use = np.zeros(nslots, dtype=bool)
        #: reverse map: slot -> owning address space id and page index
        self._owner_as = np.full(nslots, -1, dtype=np.int32)
        self._owner_pg = np.full(nslots, -1, dtype=np.int64)
        self._spaces: dict[int, "AddressSpace"] = {}
        self._next = 0  # scan pointer
        self.used = 0
        self.alloc_ops = 0
        self.fallback_scans = 0

    # -- queries -----------------------------------------------------------

    @property
    def free(self) -> int:
        return self.nslots - self.used

    def slot_to_sector(self, slot: int) -> int:
        return slot * SECTORS_PER_PAGE

    def owner(self, slot: int) -> tuple["AddressSpace | None", int]:
        as_id = int(self._owner_as[slot])
        if as_id < 0:
            return None, -1
        return self._spaces.get(as_id), int(self._owner_pg[slot])

    def in_use(self, slot: int) -> bool:
        return bool(self._in_use[slot])

    def window(self, slot: int, size: int) -> np.ndarray:
        """Aligned read-ahead window of slot indices around ``slot``."""
        lo = (slot // size) * size
        hi = min(lo + size, self.nslots)
        return np.arange(lo, hi, dtype=np.int64)

    # -- allocation ----------------------------------------------------------

    def alloc_cluster(self, n: int, aspace: "AddressSpace", pages: np.ndarray) -> np.ndarray:
        """Allocate ``n`` slots for ``pages`` of ``aspace``.

        Prefers a contiguous run starting at the scan pointer; falls back
        to a whole-map run search, then to scattered singles.  Returns
        the slot indices (ascending within each contiguous piece).
        """
        if n < 1:
            raise ValueError(f"bad slot count {n}")
        if len(pages) != n:
            raise ValueError("pages array must match slot count")
        if self.free < n:
            raise OutOfSwap(f"{self.name}: need {n} slots, {self.free} free")
        self.alloc_ops += 1
        slots = self._find_contiguous(n)
        if slots is None:
            self.fallback_scans += 1
            free_idx = np.flatnonzero(~self._in_use)
            slots = free_idx[:n]
        self._in_use[slots] = True
        self.used += n
        self._owner_as[slots] = self._space_index(aspace)
        self._owner_pg[slots] = pages
        return slots

    def _space_index(self, aspace: "AddressSpace") -> int:
        """Dense small-int handle for an address space (fits int32)."""
        if not hasattr(self, "_space_ids"):
            self._space_ids: dict[int, int] = {}
        key = id(aspace)
        idx = self._space_ids.get(key)
        if idx is None:
            idx = len(self._space_ids)
            self._space_ids[key] = idx
            self._spaces[idx] = aspace
        return idx

    def _find_contiguous(self, n: int) -> np.ndarray | None:
        """Find a free run of length ``n`` at/after the scan pointer
        (wrapping once), vectorized."""
        for lo, hi in ((self._next, self.nslots), (0, self._next + n)):
            hi = min(hi, self.nslots)
            if hi - lo < n:
                continue
            window = ~self._in_use[lo:hi]
            # Fast path: run available right at the pointer.
            if window[:n].all():
                self._next = (lo + n) % self.nslots
                return np.arange(lo, lo + n, dtype=np.int64)
            csum = np.concatenate(([0], np.cumsum(window.astype(np.int64))))
            starts = np.flatnonzero(csum[n:] - csum[:-n] == n)
            if len(starts):
                start = lo + int(starts[0])
                self._next = (start + n) % self.nslots
                return np.arange(start, start + n, dtype=np.int64)
        return None

    # -- release ---------------------------------------------------------

    def free_slots(self, slots: np.ndarray) -> None:
        slots = np.asarray(slots, dtype=np.int64)
        if len(slots) == 0:
            return
        if not self._in_use[slots].all():
            raise SimulationError(f"{self.name}: double free of swap slot")
        self._in_use[slots] = False
        self._owner_as[slots] = -1
        self._owner_pg[slots] = -1
        self.used -= len(slots)


class SwapManager:
    """Prioritized set of swap areas for one node (``swapon`` order)."""

    def __init__(self) -> None:
        self.areas: list[SwapArea] = []

    def add(self, area: SwapArea) -> None:
        self.areas.append(area)
        # Highest priority first, stable for equal priorities.
        self.areas.sort(key=lambda a: -a.priority)

    @property
    def total_free(self) -> int:
        return sum(a.free for a in self.areas)

    def alloc(
        self, n: int, aspace: "AddressSpace", pages: np.ndarray
    ) -> tuple[SwapArea, np.ndarray]:
        """Allocate ``n`` slots from the best area with room."""
        for area in self.areas:
            if area.free >= n:
                return area, area.alloc_cluster(n, aspace, pages)
        # No single area fits the whole cluster: split greedily.
        for area in self.areas:
            if area.free > 0:
                take = min(area.free, n)
                return area, area.alloc_cluster(take, aspace, pages[:take])
        raise OutOfSwap(f"no swap space left for {n} pages")
