"""CPU time accounting: a node's processors as a counted resource.

The testbed nodes are dual 2.66 GHz Xeons.  A single swapping application
leaves one CPU for kernel threads and interrupt work — so host overhead
mostly *adds latency*, not contention.  With two application instances
(Fig. 9) both CPUs are busy and kernel work starts to contend; modelling
CPUs as a plain counted resource reproduces that shift without a real
scheduler.
"""

from __future__ import annotations

from ..simulator import Resource, Simulator

__all__ = ["CPUSet"]


class CPUSet:
    """``ncpus`` identical processors; ``run(cost)`` occupies one."""

    def __init__(self, sim: Simulator, ncpus: int, name: str = "cpus") -> None:
        if ncpus < 1:
            raise ValueError(f"need at least one CPU, got {ncpus}")
        self.sim = sim
        self.ncpus = ncpus
        self._res = Resource(sim, ncpus, name=name)
        self.busy_usec = 0.0

    def run(self, cost: float):
        """Execute ``cost`` µs of work on any CPU; generator, use
        ``yield from``.  FIFO under contention."""
        if cost < 0:
            raise ValueError(f"negative CPU cost {cost}")
        if cost == 0:
            return
        yield self._res.acquire()
        try:
            yield self.sim.timeout(cost)
            self.busy_usec += cost
        finally:
            self._res.release()

    @property
    def in_use(self) -> int:
        return self._res.in_use

    def utilization(self) -> float:
        return self._res.utilization()
