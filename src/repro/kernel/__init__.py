"""Linux-2.4-style VM / swap / block-layer model (the paging substrate).

The paper changes nothing in the kernel except adding a block driver —
all of HPBD's behaviour is driven by what this layer emits: page-out
clusters, swap read-ahead reads, merged 128 KiB requests, and the
direct-reclaim stalls that couple application speed to device speed.
"""

from .blockdev import READ, WRITE, Bio, BlockRequest, RequestQueue
from .frames import FrameAllocator, OutOfFrames
from .kswapd import Kswapd
from .lru import PageLRU
from .node import Node
from .params import DEFAULT_VM_PARAMS, VMParams
from .swapmap import OutOfSwap, SwapArea, SwapManager
from .task import CPUSet
from .vmm import VMM, AddressSpace
from .vmstat import SwapStat, VMStat, format_vmstat, vmstat

__all__ = [
    "Node",
    "CPUSet",
    "FrameAllocator",
    "OutOfFrames",
    "PageLRU",
    "VMM",
    "AddressSpace",
    "VMStat",
    "SwapStat",
    "vmstat",
    "format_vmstat",
    "Kswapd",
    "VMParams",
    "DEFAULT_VM_PARAMS",
    "SwapArea",
    "SwapManager",
    "OutOfSwap",
    "RequestQueue",
    "Bio",
    "BlockRequest",
    "READ",
    "WRITE",
]
