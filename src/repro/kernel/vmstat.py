"""Observability: /proc-style snapshots of a node's VM state.

``vmstat(node)`` returns the numbers an operator would read from
``/proc/vmstat`` + ``/proc/swaps`` + ``/proc/meminfo`` on the real
system; ``format_vmstat`` renders them.  Used by examples and handy when
debugging why a scenario behaves unexpectedly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import PAGE_SIZE, fmt_bytes
from .node import Node

__all__ = ["VMStat", "SwapStat", "vmstat", "format_vmstat"]


@dataclass(frozen=True)
class SwapStat:
    """One swap area's /proc/swaps row."""

    name: str
    priority: int
    size_bytes: int
    used_bytes: int

    @property
    def used_frac(self) -> float:
        return self.used_bytes / self.size_bytes if self.size_bytes else 0.0


@dataclass(frozen=True)
class VMStat:
    """A point-in-time VM snapshot for one node."""

    time_usec: float
    total_bytes: int
    free_bytes: int
    resident_bytes: int
    writeback_bytes: int
    swapin_flight_bytes: int
    # lifetime counters
    pgfault_minor: int
    pgfault_major: int
    pswpin_pages: int
    pswpout_pages: int
    kswapd_rounds: int
    swaps: tuple[SwapStat, ...]

    @property
    def used_bytes(self) -> int:
        return self.total_bytes - self.free_bytes


def vmstat(node: Node) -> VMStat:
    """Snapshot a node's VM state (cheap; safe at any simulation time)."""
    vmm = node.vmm
    frames = node.frames
    resident = sum(a.resident_pages for a in vmm._spaces)
    wb = sum(len(a.writeback) for a in vmm._spaces)
    sin = sum(len(a.swapin_pending) for a in vmm._spaces)

    def get(name: str) -> int:
        c = node.stats.get(name)
        return int(c.total) if c is not None else 0

    return VMStat(
        time_usec=node.sim.now,
        total_bytes=frames.total_frames * PAGE_SIZE,
        free_bytes=frames.free * PAGE_SIZE,
        resident_bytes=resident * PAGE_SIZE,
        writeback_bytes=wb * PAGE_SIZE,
        swapin_flight_bytes=sin * PAGE_SIZE,
        pgfault_minor=get(f"{node.name}.vm.fault_minor"),
        pgfault_major=get(f"{node.name}.vm.fault_major"),
        pswpin_pages=get(f"{node.name}.vm.swapin_pages"),
        pswpout_pages=get(f"{node.name}.vm.swapout_pages"),
        kswapd_rounds=node.kswapd.rounds,
        swaps=tuple(
            SwapStat(
                name=a.name,
                priority=a.priority,
                size_bytes=a.nslots * PAGE_SIZE,
                used_bytes=a.used * PAGE_SIZE,
            )
            for a in vmm.swap.areas
        ),
    )


def format_vmstat(stat: VMStat) -> str:
    """Human-readable multi-line rendering."""
    lines = [
        f"t={stat.time_usec / 1e6:.3f}s  "
        f"mem {fmt_bytes(stat.used_bytes)}/{fmt_bytes(stat.total_bytes)} used, "
        f"{fmt_bytes(stat.free_bytes)} free",
        f"  resident {fmt_bytes(stat.resident_bytes)}  "
        f"writeback {fmt_bytes(stat.writeback_bytes)}  "
        f"swapin-flight {fmt_bytes(stat.swapin_flight_bytes)}",
        f"  pgfault {stat.pgfault_minor} minor / {stat.pgfault_major} major  "
        f"pswpin {stat.pswpin_pages}  pswpout {stat.pswpout_pages}  "
        f"kswapd rounds {stat.kswapd_rounds}",
    ]
    for s in stat.swaps:
        lines.append(
            f"  swap {s.name}: {fmt_bytes(s.used_bytes)}/"
            f"{fmt_bytes(s.size_bytes)} (prio {s.priority}, "
            f"{s.used_frac:.0%} full)"
        )
    return "\n".join(lines)
