"""Batched lazy-deletion LRU for page reclaim.

A faithful per-page linked list would put every page touch on the Python
hot path.  Instead we exploit the structure of the workloads (runs of
pages touched together) and keep the LRU as a FIFO of *touch batches*:

* touching pages appends ``(aspace, pages, stamps)`` with fresh stamps,
  and records the same stamps in ``aspace.page_stamp`` — O(1) amortized
  per page and fully vectorized;
* a page touched again later simply appears in a younger batch; the old
  entry becomes *stale* (its stamp no longer matches);
* eviction pops batches from the cold end and keeps only entries whose
  stamp still matches and whose page is still resident — exact LRU order
  at batch granularity, which is also how 2.4's scan-based reclaim
  behaves in practice.

Memory is bounded: the queue never holds more live entries than resident
pages, and stale entries are dropped the first time they surface.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .vmm import AddressSpace

__all__ = ["PageLRU"]


class PageLRU:
    """Global (per-node) LRU over all address spaces' resident pages."""

    def __init__(self) -> None:
        self._queue: deque[tuple["AddressSpace", np.ndarray, np.ndarray]] = deque()
        self._stamp = 0
        #: total entries including stale ones (for compaction heuristics)
        self._entries = 0
        self.live_hint = 0  # resident pages tracked (approximate)

    def __len__(self) -> int:
        return self._entries

    def next_stamps(self, n: int) -> np.ndarray:
        """Reserve ``n`` fresh, strictly increasing stamps."""
        start = self._stamp + 1
        self._stamp += n
        return np.arange(start, start + n, dtype=np.int64)

    def push_batch(
        self, aspace: "AddressSpace", pages: np.ndarray, stamps: np.ndarray
    ) -> None:
        """Record ``pages`` as most-recently-used with the given stamps.

        The caller must already have written ``stamps`` into
        ``aspace.page_stamp[pages]`` (the VMM does both together).
        """
        if len(pages) == 0:
            return
        if len(pages) != len(stamps):
            raise ValueError("pages and stamps must have equal length")
        self._queue.append((aspace, pages, stamps))
        self._entries += len(pages)

    def pop_victims(self, want: int) -> list[tuple["AddressSpace", np.ndarray]]:
        """Collect up to ``want`` genuinely-coldest resident pages.

        Returns ``(aspace, pages)`` groups in eviction order.  Batches
        are consumed whole except possibly the last, whose unused tail is
        pushed back to the cold end.
        """
        if want < 1:
            raise ValueError(f"bad victim count {want}")
        got = 0
        out: list[tuple["AddressSpace", np.ndarray]] = []
        while got < want and self._queue:
            aspace, pages, stamps = self._queue.popleft()
            self._entries -= len(pages)
            # Live = stamp still current AND page still resident AND not
            # already under writeback (vmm clears resident at submit).
            live = (aspace.page_stamp[pages] == stamps) & aspace.resident[pages]
            pages = pages[live]
            stamps = stamps[live]
            if len(pages) == 0:
                continue
            take = min(len(pages), want - got)
            out.append((aspace, pages[:take]))
            got += take
            if take < len(pages):
                # Put the untaken (still cold) tail back at the front.
                self._queue.appendleft((aspace, pages[take:], stamps[take:]))
                self._entries += len(pages) - take
        return out

    def drop_address_space(self, aspace: "AddressSpace") -> None:
        """Forget all entries of an exiting address space (lazy: bump the
        stamps so every queued entry for it becomes stale)."""
        aspace.page_stamp[:] = -1
