"""Tunable constants of the modelled Linux 2.4 VM.

These are the knobs the paper's results flow through: watermark geometry
decides how early kswapd starts cleaning, batch sizes and slot clustering
decide how large the merged block requests get (Fig. 6's ~120 KiB), and
the per-page CPU costs are the "host overhead" the paper identifies as
dominant once the network is fast (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VMParams", "DEFAULT_VM_PARAMS"]


@dataclass(frozen=True)
class VMParams:
    """Knobs of the simulated virtual-memory system."""

    #: CPU cost of a minor fault: trap, PTE walk, mapping (µs).
    fault_overhead: float = 3.0
    #: CPU cost to allocate one free frame (buddy fast path) (µs).
    alloc_overhead: float = 0.3
    #: CPU cost per page reclaimed: LRU scan share, unmap, TLB flush (µs).
    reclaim_page_overhead: float = 1.0
    #: CPU cost to allocate/free one swap slot (µs).
    slot_overhead: float = 0.3
    #: Extra per-frame cost charged to a task allocating while free
    #: memory sits below the *high* watermark, i.e. while reclaim is
    #: active (µs).  Stands in for the
    #: 2.4 slow path the paper's "host overhead" consists of:
    #: ``balance_classzone``'s synchronous scan work, zone/LRU lock
    #: contention with kswapd, SMP TLB-shootdown IPIs, and memory-bus
    #: contention with the swap device's copies/DMA.  Calibrated so
    #: testswap over HPBD lands at the paper's 1.45× local (Fig. 5).
    pressure_page_overhead: float = 18.0

    #: CPU cost per page brought in from swap, beyond the raw fault trap:
    #: swap-cache insertion/lookup, page locking, PTE rewrite and the
    #: cold-cache context switches around the blocking read (µs).
    #: Calibrated against quick sort over HPBD (Fig. 7).
    swapin_page_overhead: float = 30.0

    #: Swap read-ahead window in pages (Linux ``page_cluster=3`` → 8).
    readahead_pages: int = 8
    #: Pages reclaimed per kswapd scan batch (``SWAP_CLUSTER_MAX``).
    kswapd_batch: int = 32
    #: Maximum write-back bytes in flight per node before reclaim waits
    #: (models the 2.4 throttling of dirty-page producers).
    max_writeback_pages: int = 512

    #: Free-frame watermarks as fractions of total frames.
    frac_min: float = 0.010
    frac_low: float = 0.020
    frac_high: float = 0.040

    #: kswapd background wakeup period when idle (µs) — 2.4 woke about
    #: once a second even without pressure.
    kswapd_period: float = 1_000_000.0

    def __post_init__(self) -> None:
        if not (0 < self.frac_min < self.frac_low < self.frac_high < 0.5):
            raise ValueError(
                f"watermarks must satisfy 0 < min < low < high < 0.5, got "
                f"{self.frac_min}/{self.frac_low}/{self.frac_high}"
            )
        if self.readahead_pages < 1:
            raise ValueError("readahead_pages must be >= 1")
        if self.kswapd_batch < 1:
            raise ValueError("kswapd_batch must be >= 1")


DEFAULT_VM_PARAMS = VMParams()
