"""Virtual-memory manager: address spaces, faults, reclaim, write-back.

This models the slice of the Linux 2.4 VM that the paper's results flow
through:

* **anonymous pages** with first-touch allocation;
* a global :class:`~repro.kernel.lru.PageLRU` feeding reclaim;
* **kswapd**-style background reclaim between ``low``/``high`` free
  watermarks plus **direct reclaim** when an allocation finds memory
  tight (the throttling that couples application speed to swap-device
  speed);
* **swap-slot clustering** so page-out bios merge into ~128 KiB requests
  (Fig. 6);
* **swap read-ahead** over an aligned 8-slot window on fault;
* the **swap-cache** economy: a swapped-in page keeps its slot while
  clean (eviction is then free); writing the page invalidates the slot.

State is kept in per-address-space numpy vectors so the workload hot
path (`touch_run`) is vectorized; only misses reach the event kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..simulator import (
    Event,
    SimulationError,
    Simulator,
    StatsRegistry,
    WaitQueue,
)
from ..units import SECTORS_PER_PAGE
from .blockdev import READ, WRITE, Bio, RequestQueue
from .frames import FrameAllocator
from .lru import PageLRU
from .params import VMParams
from .swapmap import SwapArea, SwapManager
from .task import CPUSet

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["AddressSpace", "VMM"]


class AddressSpace:
    """One process's anonymous memory, page-granular numpy state."""

    def __init__(self, npages: int, name: str) -> None:
        if npages < 1:
            raise ValueError(f"address space needs pages, got {npages}")
        self.npages = npages
        self.name = name
        self.resident = np.zeros(npages, dtype=bool)
        self.dirty = np.zeros(npages, dtype=bool)
        self.page_stamp = np.full(npages, -1, dtype=np.int64)
        #: index into VMM._area_registry, -1 = no swap copy
        self.swap_area = np.full(npages, -1, dtype=np.int16)
        self.swap_slot = np.full(npages, -1, dtype=np.int64)
        #: page -> completion event for write-back in flight
        self.writeback: dict[int, Event] = {}
        #: page -> completion event for swap-in read in flight
        self.swapin_pending: dict[int, Event] = {}
        self.dead = False
        # accounting
        self.major_faults = 0
        self.minor_faults = 0
        self.stall_usec = 0.0

    @property
    def resident_pages(self) -> int:
        return int(self.resident.sum())

    @property
    def swapped_pages(self) -> int:
        return int((self.swap_slot >= 0).sum())


class VMM:
    """Per-node virtual-memory system."""

    def __init__(
        self,
        sim: Simulator,
        cpus: CPUSet,
        frames: FrameAllocator,
        params: VMParams,
        stats: StatsRegistry | None = None,
        name: str = "vm",
    ) -> None:
        self.sim = sim
        self.cpus = cpus
        self.frames = frames
        self.params = params
        self.name = name
        self.stats = stats if stats is not None else StatsRegistry()
        self.lru = PageLRU()
        self.swap = SwapManager()
        self._area_registry: list[SwapArea] = []
        self._spaces: list[AddressSpace] = []
        # kswapd plumbing (the daemon itself lives in kswapd.py)
        self.kswapd_wakeup = WaitQueue(sim, name=f"{name}.kswapd", latch=True)
        # write-back throttle
        self.wb_inflight = 0
        self.wb_waiters = WaitQueue(sim, name=f"{name}.wb")
        self._direct_reclaim_active = False
        # counters
        self._c_minor = self.stats.counter(f"{name}.fault_minor")
        self._c_major = self.stats.counter(f"{name}.fault_major")
        self._c_swapin = self.stats.counter(f"{name}.swapin_pages")
        self._c_swapout = self.stats.counter(f"{name}.swapout_pages")
        self._c_reclaim_clean = self.stats.counter(f"{name}.reclaim_clean_pages")
        self._t_fault_stall = self.stats.tally(f"{name}.fault_stall_usec")
        self._t_alloc_stall = self.stats.tally(f"{name}.alloc_stall_usec")

    # -- setup ---------------------------------------------------------------

    def add_swap_area(
        self, queue: RequestQueue, nslots: int, priority: int = 0
    ) -> SwapArea:
        """``swapon``: attach a block device as swap space."""
        area = SwapArea(
            queue, nslots, priority, name=f"{self.name}.swap{len(self._area_registry)}"
        )
        self._area_registry.append(area)
        if len(self._area_registry) > 32000:
            raise SimulationError("too many swap areas for int16 index")
        self.swap.add(area)
        return area

    def create_address_space(self, npages: int, name: str = "") -> AddressSpace:
        aspace = AddressSpace(npages, name or f"as{len(self._spaces)}")
        self._spaces.append(aspace)
        return aspace

    def destroy_address_space(self, aspace: AddressSpace):
        """Free everything; generator — waits for in-flight I/O first."""
        while aspace.writeback or aspace.swapin_pending:
            pending = list(aspace.writeback.values()) + list(
                aspace.swapin_pending.values()
            )
            yield pending[0]
        aspace.dead = True
        resident = int(aspace.resident.sum())
        if resident:
            self.frames.release(resident)
        aspace.resident[:] = False
        for idx, area in enumerate(self._area_registry):
            mask = aspace.swap_area == idx
            slots = aspace.swap_slot[mask]
            if len(slots):
                area.free_slots(slots)
        aspace.swap_area[:] = -1
        aspace.swap_slot[:] = -1
        self.lru.drop_address_space(aspace)
        if aspace in self._spaces:
            self._spaces.remove(aspace)

    # -- the application-facing hot path -------------------------------------

    def touch_run(self, aspace: AddressSpace, start: int, stop: int, write: bool):
        """Touch pages ``[start, stop)`` in order; generator.

        Blocks (yields) only for misses; residency checks, dirty marking
        and LRU stamping are vectorized.
        """
        if not (0 <= start < stop <= aspace.npages):
            raise ValueError(
                f"bad page range [{start}, {stop}) for {aspace.npages} pages"
            )
        pages = np.arange(start, stop, dtype=np.int64)
        yield from self._touch_common(aspace, pages, write)

    def touch_pages(self, aspace: AddressSpace, pages: np.ndarray, write: bool):
        """Touch an arbitrary page set (ascending order enforced here)."""
        pages = np.unique(np.asarray(pages, dtype=np.int64))
        if len(pages) == 0:
            return
        if pages[0] < 0 or pages[-1] >= aspace.npages:
            raise ValueError("page index out of range")
        yield from self._touch_common(aspace, pages, write)

    def _touch_common(self, aspace: AddressSpace, pages: np.ndarray, write: bool):
        guard = 0
        while True:
            missing = pages[~aspace.resident[pages]]
            if len(missing) == 0:
                break
            guard += 1
            if guard > 16 * len(pages) + 64:
                raise SimulationError(
                    f"{aspace.name}: touch loop not converging "
                    f"(memory far too small for working set?)"
                )
            yield from self._fault(aspace, int(missing[0]))
        self._mark_touched(aspace, pages, write)

    def _mark_touched(
        self, aspace: AddressSpace, pages: np.ndarray, write: bool
    ) -> None:
        if write:
            # Writing invalidates any swap copy (swap-cache delete).
            stale = pages[(aspace.swap_slot[pages] >= 0)]
            if len(stale):
                self._free_slots_of(aspace, stale)
            aspace.dirty[pages] = True
        stamps = self.lru.next_stamps(len(pages))
        aspace.page_stamp[pages] = stamps
        self.lru.push_batch(aspace, pages, stamps)

    def _free_slots_of(self, aspace: AddressSpace, pages: np.ndarray) -> None:
        areas = aspace.swap_area[pages]
        for idx in np.unique(areas):
            if idx < 0:
                continue
            sel = pages[areas == idx]
            self._area_registry[idx].free_slots(aspace.swap_slot[sel])
        aspace.swap_area[pages] = -1
        aspace.swap_slot[pages] = -1

    # -- fault path ----------------------------------------------------------

    def _fault(self, aspace: AddressSpace, page: int):
        t0 = self.sim.now
        yield from self.cpus.run(self.params.fault_overhead)
        if aspace.resident[page]:  # raced with read-ahead / other faulter
            return
        pending = aspace.swapin_pending.get(page)
        if pending is not None:
            yield pending
            self._record_stall(aspace, t0, page, "fault.wait")
            return
        wb = aspace.writeback.get(page)
        if wb is not None:
            # Page is being cleaned; wait, then fall through to swap-in.
            yield wb
        if aspace.resident[page]:
            self._record_stall(aspace, t0, page, "fault.wait")
            return
        if aspace.swap_slot[page] < 0:
            # First touch of an anonymous page: allocate a zeroed frame.
            yield from self._alloc_frames_blocking(1)
            aspace.resident[page] = True
            aspace.dirty[page] = False
            aspace.minor_faults += 1
            self._c_minor.add()
            self._stamp_one(aspace, page)
            self._record_stall(aspace, t0, page, "fault.minor")
        else:
            yield from self._swapin(aspace, page)
            aspace.major_faults += 1
            self._c_major.add()
            self._record_stall(aspace, t0, page, "fault.major")

    def _record_stall(
        self, aspace: AddressSpace, t0: float, page: int, kind: str
    ) -> None:
        dt = self.sim.now - t0
        aspace.stall_usec += dt
        self._t_fault_stall.record(dt)
        trace = self.sim.trace
        if trace.enabled:
            trace.complete(
                self.name, aspace.name, kind, "vm.fault",
                t0, self.sim.now, page=page,
            )

    def _stamp_one(self, aspace: AddressSpace, page: int) -> None:
        arr = np.array([page], dtype=np.int64)
        stamps = self.lru.next_stamps(1)
        aspace.page_stamp[arr] = stamps
        self.lru.push_batch(aspace, arr, stamps)

    def _swapin(self, aspace: AddressSpace, page: int):
        """Read the page back, with aligned-window read-ahead."""
        t0 = self.sim.now
        area_idx = int(aspace.swap_area[page])
        area = self._area_registry[area_idx]
        slot = int(aspace.swap_slot[page])
        # The target page's frame: may block (and direct-reclaim).
        yield from self._alloc_frames_blocking(1)
        # Re-check after the blocking allocation: another fault's
        # read-ahead may have started (or finished) this very page while
        # we slept — starting a second read would double-complete it.
        if aspace.resident[page]:
            self.frames.release(1)
            return
        pending = aspace.swapin_pending.get(page)
        if pending is not None:
            self.frames.release(1)
            yield pending
            return
        # Gather read-ahead candidates from the aligned slot window.
        window = area.window(slot, self.params.readahead_pages)
        group: list[tuple[int, AddressSpace, int]] = [(slot, aspace, page)]
        for s in window:
            s = int(s)
            if s == slot or not area.in_use(s):
                continue
            owner, opage = area.owner(s)
            if owner is None or owner.dead:
                continue
            if owner.resident[opage]:
                continue
            if opage in owner.swapin_pending or opage in owner.writeback:
                continue
            if owner.swap_slot[opage] != s:  # stale reverse map
                continue
            # Read-ahead frames are opportunistic: never block for them.
            if not self.frames.try_alloc(1):
                continue
            group.append((s, owner, opage))
        group.sort(key=lambda t: t[0])
        # Mark all as in flight before any yield.
        events: dict[int, Event] = {}
        for s, owner, opage in group:
            evt = Event(self.sim, name=f"swapin:{owner.name}:{opage}")
            owner.swapin_pending[opage] = evt
            events[s] = evt
        # Submit one bio per contiguous slot run; merging makes requests.
        target_evt = events[slot]
        self._c_swapin.add(len(group))
        for run in _contiguous_runs(group):
            first_slot = run[0][0]
            nslots = len(run)
            bio_done = Event(self.sim, name=f"swapin_bio:{first_slot}")
            bio = Bio(
                op=READ,
                sector=area.slot_to_sector(first_slot),
                nsectors=nslots * SECTORS_PER_PAGE,
                done=bio_done,
            )
            run_copy = list(run)

            def on_read_done(_evt: Event, run_copy=run_copy) -> None:
                for s, owner, opage in run_copy:
                    owner.resident[opage] = True
                    owner.dirty[opage] = False
                    pend = owner.swapin_pending.pop(opage)
                    self._stamp_one(owner, opage)
                    pend.succeed(None)

            bio_done.callbacks.append(on_read_done)
            area.queue.submit_bio(bio)
        # Demand read: unplug immediately, like the 2.4 wait-on-page path.
        area.queue.unplug()
        yield target_evt
        # Post-read kernel work for the whole cluster (swap cache, page
        # locks, PTE rewrites) lands on the faulting task.
        yield from self.cpus.run(
            self.params.swapin_page_overhead * len(group)
        )
        trace = self.sim.trace
        if trace.enabled:
            trace.complete(
                self.name, aspace.name, "swapin", "vm.swapin",
                t0, self.sim.now, page=page, group=len(group),
            )

    # -- frame allocation with reclaim ---------------------------------------

    def _alloc_frames_blocking(self, n: int):
        t0 = self.sim.now
        yield from self.cpus.run(self.params.alloc_overhead * n)
        spins = 0
        while not self.frames.try_alloc(n):
            self.wake_kswapd()
            spins += 1
            if spins > 100_000:
                raise SimulationError("allocation livelock: no reclaimable memory")
            if self._direct_reclaim_active:
                yield self.frames.memory_waiters.wait()
                continue
            self._direct_reclaim_active = True
            try:
                freed = yield from self.reclaim_batch()
            finally:
                self._direct_reclaim_active = False
            if freed == 0 and self.frames.free < n:
                # Everything cold is being written; sleep for progress.
                yield self.frames.memory_waiters.wait()
        if self.frames.below_high():
            # Reclaim is active: the allocator takes the contended slow
            # path (see VMParams.pressure_page_overhead).
            yield from self.cpus.run(self.params.pressure_page_overhead * n)
        stall = self.sim.now - t0
        if stall > 0:
            self._t_alloc_stall.record(stall)
        if self.frames.below_low():
            self.wake_kswapd()

    def wake_kswapd(self) -> None:
        self.kswapd_wakeup.wake_one()

    # -- reclaim --------------------------------------------------------------

    def reclaim_batch(self, batch: int | None = None):
        """Evict up to one batch of coldest pages; generator.

        Returns the number of frames freed *immediately* (clean pages).
        Dirty pages are queued for write-back and free their frames on
        completion.
        """
        params = self.params
        want = batch if batch is not None else params.kswapd_batch
        victims = self.lru.pop_victims(want)
        freed_now = 0
        for aspace, pages in victims:
            yield from self.cpus.run(params.reclaim_page_overhead * len(pages))
            dirty_mask = aspace.dirty[pages]
            clean = pages[~dirty_mask]
            if len(clean):
                # Clean pages drop straight out: either they still have a
                # valid swap copy, or they were never written (zero).
                aspace.resident[clean] = False
                self.frames.release(len(clean))
                freed_now += len(clean)
                self._c_reclaim_clean.add(len(clean))
            dirty = pages[dirty_mask]
            if len(dirty):
                if not self.swap.areas:
                    # No swap configured: anonymous dirty pages are not
                    # reclaimable — rotate them back to the young end.
                    stamps = self.lru.next_stamps(len(dirty))
                    aspace.page_stamp[dirty] = stamps
                    self.lru.push_batch(aspace, dirty, stamps)
                else:
                    yield from self._pageout(aspace, dirty)
        return freed_now

    def _pageout(self, aspace: AddressSpace, pages: np.ndarray):
        """Queue dirty ``pages`` for swap-out write-back; generator."""
        params = self.params
        t0 = self.sim.now
        # Throttle: bound write-back bytes in flight (2.4 dirty throttling).
        while self.wb_inflight >= params.max_writeback_pages:
            yield self.wb_waiters.wait()
        remaining = pages
        while len(remaining):
            area, slots = self.swap.alloc(len(remaining), aspace, remaining)
            chunk = remaining[: len(slots)]
            remaining = remaining[len(slots) :]
            yield from self.cpus.run(params.slot_overhead * len(chunk))
            aspace.swap_area[chunk] = self._area_registry.index(area)
            aspace.swap_slot[chunk] = slots
            aspace.resident[chunk] = False
            aspace.dirty[chunk] = False
            self.wb_inflight += len(chunk)
            self._c_swapout.add(len(chunk))
            order = np.argsort(slots)
            for page, slot in zip(chunk[order], slots[order]):
                page = int(page)
                evt = Event(self.sim, name=f"wb:{aspace.name}:{page}")
                aspace.writeback[page] = evt
                bio_done = Event(self.sim, name=f"wb_bio:{page}")
                bio = Bio(
                    op=WRITE,
                    sector=area.slot_to_sector(int(slot)),
                    nsectors=SECTORS_PER_PAGE,
                    done=bio_done,
                )

                def on_write_done(_e: Event, aspace=aspace, page=page, evt=evt) -> None:
                    self.wb_inflight -= 1
                    del aspace.writeback[page]
                    self.frames.release(1)
                    evt.succeed(None)
                    self.wb_waiters.wake_all()

                bio_done.callbacks.append(on_write_done)
                area.queue.submit_bio(bio)
        trace = self.sim.trace
        if trace.enabled:
            # Slot allocation + bio submission; the writes themselves
            # complete asynchronously under blk.service.
            trace.complete(
                self.name, aspace.name, "pageout", "vm.pageout",
                t0, self.sim.now, pages=len(pages),
            )

    # -- invariants / quiescing ------------------------------------------------

    def quiesce(self):
        """Wait for all in-flight swap I/O to settle; generator."""
        while True:
            events = []
            for aspace in self._spaces:
                events.extend(aspace.writeback.values())
                events.extend(aspace.swapin_pending.values())
            if not events:
                return
            yield events[0]

    def check_frame_accounting(self) -> None:
        """Assert the frame ledger balances (only valid when quiesced)."""
        held = sum(a.resident_pages for a in self._spaces)
        inflight = sum(
            len(a.writeback) + len(a.swapin_pending) for a in self._spaces
        )
        if inflight:
            self.sim.monitors.violation(
                "vm.frame_ledger", self.name,
                "frame accounting checked with swap I/O in flight",
                inflight=inflight,
            )
            raise SimulationError("check_frame_accounting needs quiesced VM")
        if held != self.frames.used:
            self.sim.monitors.violation(
                "vm.frame_ledger", self.name,
                "resident pages and used frames diverged",
                resident=held, used=self.frames.used,
            )
            raise SimulationError(
                f"frame ledger broken: resident={held} used={self.frames.used}"
            )


def _contiguous_runs(
    group: list[tuple[int, "AddressSpace", int]]
) -> list[list[tuple[int, "AddressSpace", int]]]:
    """Split (slot, aspace, page) triples (sorted by slot) into runs of
    consecutive slots."""
    runs: list[list[tuple[int, AddressSpace, int]]] = []
    for item in group:
        if runs and item[0] == runs[-1][-1][0] + 1:
            runs[-1].append(item)
        else:
            runs.append([item])
    return runs
