"""kswapd: the background page-out daemon.

Woken when allocations find free memory below the ``low`` watermark (and
on a slow periodic tick, as in 2.4); reclaims in
``SWAP_CLUSTER_MAX``-page batches until free memory climbs back above
``high``.  Because it runs *ahead* of the application, a fast swap device
lets the application almost never block in direct reclaim — the
asynchrony the paper leans on when HPBD approaches local-memory speed.
"""

from __future__ import annotations

from ..simulator import Process, Simulator
from .vmm import VMM

__all__ = ["Kswapd"]


class Kswapd:
    """The daemon; construct then :meth:`start`."""

    def __init__(self, sim: Simulator, vmm: VMM, name: str = "kswapd") -> None:
        self.sim = sim
        self.vmm = vmm
        self.name = name
        self.proc: Process | None = None
        self._ticker: Process | None = None
        self.rounds = 0

    def start(self) -> None:
        if self.proc is not None:
            raise RuntimeError(f"{self.name} already started")
        self.proc = self.sim.spawn(self._run(), name=self.name)
        self._ticker = self.sim.spawn(self._tick(), name=f"{self.name}.tick")

    def _tick(self):
        period = self.vmm.params.kswapd_period
        while True:
            yield self.sim.timeout(period)
            self.vmm.wake_kswapd()

    def _run(self):
        vmm = self.vmm
        frames = vmm.frames
        while True:
            yield vmm.kswapd_wakeup.wait()
            self.rounds += 1
            while frames.below_high():
                freed = yield from vmm.reclaim_batch()
                if freed == 0:
                    if vmm.wb_inflight > 0:
                        # All cold pages dirty & in flight: wait for the
                        # device instead of spinning.
                        yield vmm.wb_waiters.wait()
                    else:
                        break  # nothing reclaimable right now
