"""A cluster node: CPUs + DRAM + VM + its fabric attachment.

Mirrors the testbed box (§6.1): dual Xeon 2.66 GHz, configurable memory
("we change the total local memory size available to the OS"), one HCA
port, one ATA disk.  Swap devices are attached with
:meth:`Node.swapon`, which wires a block-device request queue into the
VM as a prioritized swap area.
"""

from __future__ import annotations

from ..net.link import Fabric
from ..simulator import Simulator, StatsRegistry
from ..units import PAGE_SIZE, bytes_to_pages
from .blockdev import RequestQueue
from .frames import FrameAllocator
from .kswapd import Kswapd
from .params import DEFAULT_VM_PARAMS, VMParams
from .swapmap import SwapArea
from .task import CPUSet
from .vmm import VMM

__all__ = ["Node"]


class Node:
    """One machine in the cluster."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        name: str,
        mem_bytes: int,
        ncpus: int = 2,
        vm_params: VMParams = DEFAULT_VM_PARAMS,
        stats: StatsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.name = name
        self.mem_bytes = mem_bytes
        self.stats = stats if stats is not None else StatsRegistry()
        self.cpus = CPUSet(sim, ncpus, name=f"{name}.cpus")
        self.frames = FrameAllocator(
            sim,
            bytes_to_pages(mem_bytes),
            vm_params,
            stats=self.stats,
            name=f"{name}.frames",
        )
        self.vmm = VMM(
            sim, self.cpus, self.frames, vm_params, stats=self.stats, name=f"{name}.vm"
        )
        self.kswapd = Kswapd(sim, self.vmm, name=f"{name}.kswapd")
        self.kswapd.start()

    def swapon(
        self, queue: RequestQueue, size_bytes: int, priority: int = 0
    ) -> SwapArea:
        """Attach a block device (via its request queue) as swap."""
        nslots = size_bytes // PAGE_SIZE
        return self.vmm.add_swap_area(queue, nslots, priority)

    def __repr__(self) -> str:
        return (
            f"<Node {self.name} mem={self.mem_bytes >> 20}MiB "
            f"cpus={self.cpus.ncpus}>"
        )
