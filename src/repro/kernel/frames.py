"""Physical-frame accounting and reclaim watermarks.

Frames are fungible (a count, not identities) — page identity lives in
each address space's numpy state vectors.  The allocator tracks the
``min``/``low``/``high`` free watermarks that drive kswapd, exactly the
2.4 ``freepages`` triple.

The free-page time series is recorded so experiments can verify the
steady state the paper's runs operate in (free oscillating between low
and high while the application streams).
"""

from __future__ import annotations

from ..simulator import Simulator, StatsRegistry, WaitQueue
from .params import VMParams

__all__ = ["FrameAllocator", "OutOfFrames"]


class OutOfFrames(Exception):
    """Raised when a non-blocking allocation finds zero free frames."""


class FrameAllocator:
    """Counted physical frames with watermark queries."""

    def __init__(
        self,
        sim: Simulator,
        total_frames: int,
        params: VMParams,
        stats: StatsRegistry | None = None,
        name: str = "frames",
    ) -> None:
        if total_frames < 64:
            raise ValueError(f"unreasonably small memory: {total_frames} frames")
        self.sim = sim
        self.name = name
        self.total_frames = total_frames
        self.free = total_frames
        self.wm_min = max(8, int(total_frames * params.frac_min))
        self.wm_low = max(self.wm_min + 1, int(total_frames * params.frac_low))
        self.wm_high = max(self.wm_low + 1, int(total_frames * params.frac_high))
        self.stats = stats if stats is not None else StatsRegistry()
        self._series = self.stats.timeseries(f"{name}.free")
        #: tasks blocked waiting for memory (direct-reclaim sleepers)
        self.memory_waiters = WaitQueue(sim, name=f"{name}.waiters")
        self.alloc_count = 0
        self.free_count = 0

    # -- queries -----------------------------------------------------------

    @property
    def used(self) -> int:
        return self.total_frames - self.free

    def below_min(self) -> bool:
        return self.free <= self.wm_min

    def below_low(self) -> bool:
        return self.free <= self.wm_low

    def below_high(self) -> bool:
        return self.free < self.wm_high

    # -- operations ----------------------------------------------------------

    def try_alloc(self, n: int = 1) -> bool:
        """Take ``n`` frames if available (never dips below zero)."""
        if n < 1:
            raise ValueError(f"bad allocation count {n}")
        if self.free < n:
            return False
        self.free -= n
        self.alloc_count += n
        self._series.record(self.sim.now, self.free)
        return True

    def release(self, n: int = 1) -> None:
        if n < 1:
            raise ValueError(f"bad free count {n}")
        self.free += n
        self.free_count += n
        if self.free > self.total_frames:
            raise AssertionError(
                f"{self.name}: freed more frames than exist "
                f"({self.free}/{self.total_frames})"
            )
        self._series.record(self.sim.now, self.free)
        # Frames became available: let direct-reclaim sleepers retry.
        self.memory_waiters.wake_all()
