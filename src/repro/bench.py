"""Host-side performance measurement: DES throughput + sweep timings.

This is the package's own perf trajectory: ``repro bench --json`` writes
``BENCH_simulator.json`` with event-loop throughput (events/sec for the
two hot shapes — timeout churn and already-processed relay resume) and
figure-sweep wall-times (serial, parallel, cached re-run).  CI runs it
as a smoke job with a conservative events/sec floor so a hot-path
regression fails fast.

Numbers here are host wall-clock, not simulated time — they measure the
*simulator*, not the modelled system.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import sys
import tempfile
import time
from typing import Any

from .simulator import Simulator

__all__ = [
    "bench_timeout_churn",
    "bench_relay_resume",
    "bench_rs_encode",
    "bench_obs_overhead",
    "bench_fluid_bulk",
    "bench_blame_split",
    "bench_cluster_fairness",
    "bench_health_overhead",
    "bench_figure_sweep",
    "run_bench",
]


def bench_timeout_churn(nevents: int = 100_000, rounds: int = 3) -> float:
    """Events/sec for one process sleeping ``nevents`` times."""
    best = float("inf")
    for _ in range(rounds):
        sim = Simulator()

        def proc(sim):
            for _ in range(nevents):
                yield sim.timeout(1.0)

        p = sim.spawn(proc(sim))
        t0 = time.perf_counter()
        sim.run(until=p)
        best = min(best, time.perf_counter() - t0)
    return nevents / best


def bench_relay_resume(nevents: int = 100_000, rounds: int = 3) -> float:
    """Events/sec for yielding an already-processed event (relay path)."""
    best = float("inf")
    for _ in range(rounds):
        sim = Simulator()
        done = sim.event("done")
        done.succeed(1)

        def warm(sim):
            yield done

        sim.run(until=sim.spawn(warm(sim)))

        def proc(sim):
            for _ in range(nevents):
                yield done

        p = sim.spawn(proc(sim))
        t0 = time.perf_counter()
        sim.run(until=p)
        best = min(best, time.perf_counter() - t0)
    return nevents / best


def bench_obs_overhead(nevents: int = 100_000, rounds: int = 3) -> dict[str, Any]:
    """Cost of disabled tracing on the event-loop hot path.

    Two timeout-churn loops, identical except that the second adds the
    ``if sim.trace.enabled:`` guard every instrumented site pays on
    every event.  The overhead fraction is what an untraced simulation
    pays for the observability layer existing at all — the satellite
    benchmark asserts it stays within a few percent.
    """
    best_bare = best_guarded = float("inf")
    for _ in range(rounds):
        sim = Simulator()

        def bare(sim):
            for _ in range(nevents):
                t = sim.now  # noqa: F841 — same loop body as guarded
                yield sim.timeout(1.0)

        p = sim.spawn(bare(sim))
        t0 = time.perf_counter()
        sim.run(until=p)
        best_bare = min(best_bare, time.perf_counter() - t0)

        sim = Simulator()

        def guarded(sim):
            for _ in range(nevents):
                t = sim.now
                yield sim.timeout(1.0)
                trace = sim.trace
                if trace.enabled:  # pragma: no cover - disabled by design
                    trace.complete("bench", "loop", "tick", "bench", t, sim.now)

        p = sim.spawn(guarded(sim))
        t0 = time.perf_counter()
        sim.run(until=p)
        best_guarded = min(best_guarded, time.perf_counter() - t0)
    bare_rate = nevents / best_bare
    guarded_rate = nevents / best_guarded
    return {
        "nevents": nevents,
        "rounds": rounds,
        "bare_events_per_sec": bare_rate,
        "guarded_events_per_sec": guarded_rate,
        "overhead_frac": bare_rate / guarded_rate - 1.0,
    }


def bench_fluid_bulk(
    chunk_bytes: int = 8 * 1024 * 1024,
    nchunks: int = 8,
    rounds: int = 3,
) -> dict[str, Any]:
    """Fluid fast path vs. per-page discrete stepping on a bulk workload.

    ``nchunks`` sequential uncontended transfers through one
    :class:`~repro.simulator.FluidChannel` — the spill/migration shape.
    The fluid arm collapses each transfer to O(1) scheduler entries; the
    forced-discrete arm steps every 4 KiB page (what an enabled tracer
    or fault window costs).  Both arms must produce bit-identical
    completion times — the equivalence the fast path is allowed to
    exist on — and the payload records the event-count and wall-clock
    ratios the CI floor tracks.
    """
    from .simulator import FluidChannel

    def run_once(force_discrete: bool) -> tuple[float, int, list[float]]:
        sim = Simulator()
        chan = FluidChannel(sim, rate_bytes_per_usec=800.0)
        chan.force_discrete = force_discrete

        def workload(sim):
            finish_times = []
            for _ in range(nchunks):
                yield chan.transfer(chunk_bytes)
                finish_times.append(sim.now)
            return finish_times

        p = sim.spawn(workload(sim))
        t0 = time.perf_counter()
        times = sim.run(until=p)
        return time.perf_counter() - t0, sim.events_processed, times

    fluid_wall = discrete_wall = float("inf")
    fluid_events = discrete_events = 0
    fluid_times: list[float] = []
    discrete_times: list[float] = []
    for _ in range(rounds):
        wall, nev, times = run_once(False)
        if wall < fluid_wall:
            fluid_wall, fluid_events, fluid_times = wall, nev, times
        wall, nev, times = run_once(True)
        if wall < discrete_wall:
            discrete_wall, discrete_events, discrete_times = wall, nev, times
    return {
        "chunk_bytes": chunk_bytes,
        "nchunks": nchunks,
        "rounds": rounds,
        "fluid_wall_sec": fluid_wall,
        "discrete_wall_sec": discrete_wall,
        "fluid_events": fluid_events,
        "discrete_events": discrete_events,
        "event_reduction": discrete_events / fluid_events if fluid_events else None,
        "wall_speedup": discrete_wall / fluid_wall if fluid_wall else None,
        "identical_results": fluid_times == discrete_times,
        "final_usec": fluid_times[-1] if fluid_times else None,
    }


def bench_rs_encode(
    k: int = 4,
    m: int = 2,
    shard_bytes: int = 1 << 20,
    rounds: int = 3,
) -> "dict[str, Any] | None":
    """GF(256) Reed-Solomon codec throughput (host MB/s).

    Encodes ``k`` random 1 MiB shards into ``m`` parity rows and then
    reconstructs ``m`` erased shards from the survivors — the real
    numpy codec the redundancy subsystem's cost model stands in for.
    Throughput is data bytes (``k * shard_bytes``) over the best of
    ``rounds`` wall-clock passes.  Returns ``None`` when numpy is
    unavailable (the simulator itself runs without it).
    """
    try:
        from .redundancy.gf256 import rs_encode, rs_matrix, rs_reconstruct
        import numpy as np
    except ImportError:  # pragma: no cover — numpy-less env
        return None

    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, size=(k, shard_bytes), dtype=np.uint8)
    matrix = rs_matrix(k, m)
    nbytes = k * shard_bytes

    best_enc = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        parity = rs_encode(matrix, data)
        best_enc = min(best_enc, time.perf_counter() - t0)

    shards: list = [None] * m + [data[i] for i in range(m, k)]
    shards += [parity[j] for j in range(m)]
    best_rec = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = rs_reconstruct(matrix, list(shards))
        best_rec = min(best_rec, time.perf_counter() - t0)
    ok = all(
        np.array_equal(out[i], data[i]) for i in range(k)
    )

    return {
        "k": k,
        "m": m,
        "shard_bytes": shard_bytes,
        "rounds": rounds,
        "encode_mb_s": nbytes / best_enc / 1e6,
        "reconstruct_mb_s": nbytes / best_rec / 1e6,
        "roundtrip_ok": bool(ok),
    }


def bench_blame_split(scale: int = 64) -> dict[str, Any]:
    """One traced fig07 HPBD point through the sweep engine.

    Records the per-request blame aggregate and its queueing-vs-wire
    split so BENCH files carry the attribution alongside the timings.
    """
    from .analysis.critpath import blame_split
    from .config import HPBD
    from .experiments import fig07_points
    from .sweep import run_sweep

    points = fig07_points(scale, [HPBD()])
    t0 = time.perf_counter()
    report = run_sweep(points, workers=1, cache=None, trace=True)
    traced_sec = time.perf_counter() - t0
    result = report.results[0]
    return {
        "point": points[0].name,
        "scale": scale,
        "traced_sec": traced_sec,
        "blame_usec": result.blame_usec,
        **blame_split(result.blame_usec),
        "invariant_violations": len(result.invariant_violations),
    }


def bench_cluster_fairness(scale: int = 64) -> dict[str, Any]:
    """One untraced 3-tenant fair cluster run: host throughput + spread.

    Events/sec here is simulator events over host wall-clock for the
    multi-tenant scenario (three kernel nodes, QoS scheduling, fleet
    accounting — a heavier per-event mix than the single-node sweeps),
    alongside the per-tenant completion-time spread the fairness gate
    tracks.
    """
    from .cluster.runner import build_cluster_scenario
    from .experiments import cluster_fair_config

    cfg = cluster_fair_config(scale)
    scenario = build_cluster_scenario(cfg)
    t0 = time.perf_counter()
    result = scenario.run()
    wall_sec = time.perf_counter() - t0
    nevents = scenario.sim.events_processed
    elapsed = [t.elapsed_usec for t in result.tenants]
    return {
        "scale": scale,
        "tenants": len(result.tenants),
        "nservers": result.nservers,
        "wall_sec": wall_sec,
        "events": nevents,
        "events_per_sec": nevents / wall_sec if wall_sec > 0 else 0.0,
        "spread": result.spread,
        "jain_index": result.jain_index,
        "tenant_elapsed_usec": elapsed,
    }


def bench_health_overhead(scale: int = 64, rounds: int = 5) -> dict[str, Any]:
    """Cost of the always-on fleet health model on the cluster hot path.

    Two identical fair cluster runs: ``health=None`` (invariant
    monitors only) vs. the default :class:`~repro.config.HealthConfig`
    (per-request sketch updates, per-server RTT EWMAs, and the periodic
    SLO/detector tick).  The overhead fraction is the extra host wall
    time every cluster run pays for SLOs being evaluated online; the
    satellite benchmark asserts it stays under 10% (best-of-``rounds``
    to shrug off host noise).
    """
    from .cluster.runner import build_cluster_scenario
    from .experiments import cluster_fair_config

    def run_once(with_health: bool) -> tuple[float, int]:
        cfg = cluster_fair_config(scale)
        if not with_health:
            cfg.health = None
        scenario = build_cluster_scenario(cfg)
        # collect the previous round's dead scenario graph now, so its
        # reclamation isn't billed to whichever arm triggers GC next
        gc.collect()
        t0 = time.perf_counter()
        scenario.run()
        return time.perf_counter() - t0, scenario.sim.events_processed

    base_wall = health_wall = float("inf")
    base_events = health_events = 0
    for _ in range(rounds):
        wall, nev = run_once(False)
        if wall < base_wall:
            base_wall, base_events = wall, nev
        wall, nev = run_once(True)
        if wall < health_wall:
            health_wall, health_events = wall, nev
    return {
        "scale": scale,
        "rounds": rounds,
        "baseline_wall_sec": base_wall,
        "health_wall_sec": health_wall,
        "baseline_events": base_events,
        "health_events": health_events,
        "baseline_events_per_sec": base_events / base_wall,
        "health_events_per_sec": health_events / health_wall,
        "overhead_frac": health_wall / base_wall - 1.0,
    }


def bench_figure_sweep(
    scale: int = 64, workers: "int | str | None" = "auto"
) -> dict[str, Any]:
    """Time a 4-point fig07 device sweep: serial, parallel, cached re-run.

    The four swap devices (HPBD, NBD over IPoIB and GigE, local disk)
    form the grid; the local-memory baseline is excluded so every point
    actually swaps.  The cached re-run must re-simulate zero points.

    The parallel arm is always measured.  On a 1-CPU host ``auto``
    resolves to one worker, which used to leave ``parallel_sec: null``
    in BENCH files — silently, so nobody knew whether the pool was
    broken or just skipped.  Now the arm runs with two workers anyway
    (exercising the process-pool path; it will be slower than serial,
    which is fine — it's a smoke measurement there, not a speedup
    claim) and the payload carries ``parallel_workers`` plus a
    ``parallel_note`` explaining the forcing so readers and the CLI can
    tell the two situations apart.
    """
    from .config import HPBD, LocalDisk, NBD
    from .experiments import fig07_points
    from .sweep import resolve_workers, run_sweep

    devices = [HPBD(), NBD("ipoib"), NBD("gige"), LocalDisk()]
    points = fig07_points(scale, devices)
    nworkers = resolve_workers(workers)

    t0 = time.perf_counter()
    run_sweep(points, workers=1)
    serial_sec = time.perf_counter() - t0

    parallel_note = None
    parallel_workers = nworkers
    if nworkers <= 1:
        parallel_workers = 2
        parallel_note = (
            f"host has {os.cpu_count()} CPU(s); forced workers=2 to "
            "exercise the process pool — expect no speedup over serial"
        )
    t0 = time.perf_counter()
    run_sweep(points, workers=parallel_workers)
    parallel_sec = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        warm = run_sweep(points, workers=1, cache=tmp)
        t0 = time.perf_counter()
        rerun = run_sweep(points, workers=1, cache=tmp)
        cached_sec = time.perf_counter() - t0

    return {
        "points": len(points),
        "scale": scale,
        "workers": nworkers,
        "serial_sec": serial_sec,
        "parallel_sec": parallel_sec,
        "parallel_workers": parallel_workers,
        "parallel_note": parallel_note,
        "cached_rerun_sec": cached_sec,
        "warm_simulated": warm.simulated,
        "cached_points_resimulated": rerun.simulated,
        "cached_speedup_vs_serial": serial_sec / cached_sec if cached_sec else None,
    }


def run_bench(
    *,
    nevents: int = 100_000,
    rounds: int = 3,
    sweep_scale: int = 64,
    workers: "int | str | None" = "auto",
    skip_sweep: bool = False,
) -> dict[str, Any]:
    """Run every benchmark; returns the JSON-ready payload."""
    from .obs.campaign import git_provenance

    commit, dirty = git_provenance()
    payload: dict[str, Any] = {
        "schema": "repro-bench/1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "hostname": platform.node(),
        "cpus": os.cpu_count(),
        "git_commit": commit,
        "git_dirty": dirty,
        "scheduler": os.environ.get("REPRO_SCHEDULER", "wheel"),
        "campaign_floors": [
            {"point": "*", "metric": "violations", "max": 0},
        ],
        "event_loop": {
            "nevents": nevents,
            "rounds": rounds,
            "timeout_events_per_sec": bench_timeout_churn(nevents, rounds),
            "relay_events_per_sec": bench_relay_resume(nevents, rounds),
        },
        "obs_overhead": bench_obs_overhead(nevents, rounds),
        "fluid_bulk": bench_fluid_bulk(rounds=rounds),
        "rs_encode": bench_rs_encode(rounds=rounds),
    }
    if not skip_sweep:
        payload["sweep"] = bench_figure_sweep(sweep_scale, workers)
        payload["blame"] = bench_blame_split(sweep_scale)
        payload["cluster_fairness"] = bench_cluster_fairness(sweep_scale)
        payload["health_overhead"] = bench_health_overhead(sweep_scale)
    return payload


def write_bench_json(path: str, payload: dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
