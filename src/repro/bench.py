"""Host-side performance measurement: DES throughput + sweep timings.

This is the package's own perf trajectory: ``repro bench --json`` writes
``BENCH_simulator.json`` with event-loop throughput (events/sec for the
two hot shapes — timeout churn and already-processed relay resume) and
figure-sweep wall-times (serial, parallel, cached re-run).  CI runs it
as a smoke job with a conservative events/sec floor so a hot-path
regression fails fast.

Numbers here are host wall-clock, not simulated time — they measure the
*simulator*, not the modelled system.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from typing import Any

from .simulator import Simulator

__all__ = [
    "bench_timeout_churn",
    "bench_relay_resume",
    "bench_figure_sweep",
    "run_bench",
]


def bench_timeout_churn(nevents: int = 100_000, rounds: int = 3) -> float:
    """Events/sec for one process sleeping ``nevents`` times."""
    best = float("inf")
    for _ in range(rounds):
        sim = Simulator()

        def proc(sim):
            for _ in range(nevents):
                yield sim.timeout(1.0)

        p = sim.spawn(proc(sim))
        t0 = time.perf_counter()
        sim.run(until=p)
        best = min(best, time.perf_counter() - t0)
    return nevents / best


def bench_relay_resume(nevents: int = 100_000, rounds: int = 3) -> float:
    """Events/sec for yielding an already-processed event (relay path)."""
    best = float("inf")
    for _ in range(rounds):
        sim = Simulator()
        done = sim.event("done")
        done.succeed(1)

        def warm(sim):
            yield done

        sim.run(until=sim.spawn(warm(sim)))

        def proc(sim):
            for _ in range(nevents):
                yield done

        p = sim.spawn(proc(sim))
        t0 = time.perf_counter()
        sim.run(until=p)
        best = min(best, time.perf_counter() - t0)
    return nevents / best


def bench_figure_sweep(
    scale: int = 64, workers: "int | str | None" = "auto"
) -> dict[str, Any]:
    """Time a 4-point fig07 device sweep: serial, parallel, cached re-run.

    The four swap devices (HPBD, NBD over IPoIB and GigE, local disk)
    form the grid; the local-memory baseline is excluded so every point
    actually swaps.  The cached re-run must re-simulate zero points.
    """
    from .config import HPBD, LocalDisk, NBD
    from .experiments import fig07_points
    from .sweep import resolve_workers, run_sweep

    devices = [HPBD(), NBD("ipoib"), NBD("gige"), LocalDisk()]
    points = fig07_points(scale, devices)
    nworkers = resolve_workers(workers)

    t0 = time.perf_counter()
    run_sweep(points, workers=1)
    serial_sec = time.perf_counter() - t0

    parallel_sec = None
    if nworkers > 1:
        t0 = time.perf_counter()
        run_sweep(points, workers=nworkers)
        parallel_sec = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        warm = run_sweep(points, workers=1, cache=tmp)
        t0 = time.perf_counter()
        rerun = run_sweep(points, workers=1, cache=tmp)
        cached_sec = time.perf_counter() - t0

    return {
        "points": len(points),
        "scale": scale,
        "workers": nworkers,
        "serial_sec": serial_sec,
        "parallel_sec": parallel_sec,
        "cached_rerun_sec": cached_sec,
        "warm_simulated": warm.simulated,
        "cached_points_resimulated": rerun.simulated,
        "cached_speedup_vs_serial": serial_sec / cached_sec if cached_sec else None,
    }


def run_bench(
    *,
    nevents: int = 100_000,
    rounds: int = 3,
    sweep_scale: int = 64,
    workers: "int | str | None" = "auto",
    skip_sweep: bool = False,
) -> dict[str, Any]:
    """Run every benchmark; returns the JSON-ready payload."""
    payload: dict[str, Any] = {
        "schema": "repro-bench/1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "event_loop": {
            "nevents": nevents,
            "rounds": rounds,
            "timeout_events_per_sec": bench_timeout_churn(nevents, rounds),
            "relay_events_per_sec": bench_relay_resume(nevents, rounds),
        },
    }
    if not skip_sweep:
        payload["sweep"] = bench_figure_sweep(sweep_scale, workers)
    return payload


def write_bench_json(path: str, payload: dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
