"""Memory registration: protection domains, memory regions, keys.

InfiniBand requires every buffer touched by the HCA to be *registered*
(pinned + entered into the HCA's translation table).  Registration is the
costly operation Fig. 3 measures and the reason HPBD copies pages through
a pre-registered pool instead of registering on the fly (§4.1).

Addresses here are simulated: each node owns a flat 64-bit address space
and regions are ``[addr, addr+length)`` intervals.  The registry checks
every RDMA target against the registered intervals, so a protocol bug
that would have corrupted memory on real hardware fails loudly here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..simulator import SimulationError

__all__ = ["AccessFlags", "MemoryRegion", "ProtectionDomain", "RemoteKeyError"]


class RemoteKeyError(SimulationError):
    """An RDMA operation referenced an invalid or out-of-bounds key."""


class AccessFlags:
    """Bitmask access rights for a memory region."""

    LOCAL_WRITE = 0x1
    REMOTE_READ = 0x2
    REMOTE_WRITE = 0x4
    ALL = LOCAL_WRITE | REMOTE_READ | REMOTE_WRITE


_key_counter = itertools.count(1)


@dataclass
class MemoryRegion:
    """A registered ``[addr, addr + length)`` interval.

    ``lkey`` authorizes local use, ``rkey`` remote RDMA.  Once
    :meth:`invalidate` is called (deregistration) any further use is an
    error — catching use-after-free of pool buffers.
    """

    addr: int
    length: int
    access: int
    node: str
    lkey: int = field(default_factory=lambda: next(_key_counter))
    rkey: int = field(default_factory=lambda: next(_key_counter))
    valid: bool = True

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"region length must be positive, got {self.length}")
        if self.addr < 0:
            raise ValueError(f"negative address {self.addr}")

    @property
    def end(self) -> int:
        return self.addr + self.length

    def contains(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.end

    def check_remote(self, addr: int, length: int, write: bool) -> None:
        """Validate an incoming RDMA against this region."""
        if not self.valid:
            raise RemoteKeyError(f"rkey {self.rkey}: region deregistered")
        needed = AccessFlags.REMOTE_WRITE if write else AccessFlags.REMOTE_READ
        if not self.access & needed:
            op = "write" if write else "read"
            raise RemoteKeyError(f"rkey {self.rkey}: remote {op} not permitted")
        if not self.contains(addr, length):
            raise RemoteKeyError(
                f"rkey {self.rkey}: [{addr}, {addr + length}) outside "
                f"[{self.addr}, {self.end})"
            )

    def invalidate(self) -> None:
        self.valid = False


class ProtectionDomain:
    """Groups regions and QPs of one consumer; resolves rkeys.

    One PD per HPBD endpoint (client driver instance / server daemon).
    """

    def __init__(self, node: str) -> None:
        self.node = node
        self._regions: dict[int, MemoryRegion] = {}  # rkey -> region
        self._next_addr = 0x1000_0000  # fake VA allocator for this PD

    def allocate_va(self, length: int, align: int = 4096) -> int:
        """Hand out a fresh simulated virtual address range."""
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        addr = -(-self._next_addr // align) * align
        self._next_addr = addr + length
        return addr

    def register(
        self, addr: int, length: int, access: int = AccessFlags.ALL
    ) -> MemoryRegion:
        """Create a region (timing is charged by the HCA, not here)."""
        mr = MemoryRegion(addr=addr, length=length, access=access, node=self.node)
        self._regions[mr.rkey] = mr
        return mr

    def deregister(self, mr: MemoryRegion) -> None:
        if self._regions.pop(mr.rkey, None) is None:
            raise RemoteKeyError(f"rkey {mr.rkey} not registered with this PD")
        mr.invalidate()

    def resolve_rkey(self, rkey: int) -> MemoryRegion:
        mr = self._regions.get(rkey)
        if mr is None:
            raise RemoteKeyError(f"unknown rkey {rkey}")
        return mr

    @property
    def registered_bytes(self) -> int:
        return sum(mr.length for mr in self._regions.values())

    @property
    def region_count(self) -> int:
        return len(self._regions)
