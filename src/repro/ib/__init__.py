"""Simulated InfiniBand verbs: HCAs, PDs/MRs, CQs with solicited events,
RC queue pairs with send/recv and RDMA read/write.

The model charges the calibrated :class:`~repro.net.fabrics.IBParams`
costs and enforces verbs-level invariants (registered-region bounds,
pre-posted receives, per-QP ordering) so protocol bugs fail loudly.
"""

from .cm import HANDSHAKE_USEC, ConnectionError_, connect, connect_endpoints
from .cq import CQE, CompletionQueue, Opcode, WCStatus
from .hca import HCA
from .mr import AccessFlags, MemoryRegion, ProtectionDomain, RemoteKeyError
from .qp import (
    QueuePair,
    QPError,
    RDMAReadWR,
    RDMAWriteWR,
    ReceiverNotReady,
    RecvWR,
    SendWR,
)

__all__ = [
    "HCA",
    "ProtectionDomain",
    "MemoryRegion",
    "AccessFlags",
    "RemoteKeyError",
    "CompletionQueue",
    "CQE",
    "Opcode",
    "WCStatus",
    "QueuePair",
    "SendWR",
    "RecvWR",
    "RDMAWriteWR",
    "RDMAReadWR",
    "QPError",
    "ReceiverNotReady",
    "connect",
    "connect_endpoints",
    "ConnectionError_",
    "HANDSHAKE_USEC",
]
