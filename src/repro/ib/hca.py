"""Host channel adapter: the per-node verbs provider.

One :class:`HCA` per node.  It owns the node's fabric port (the PCI-X
serialization bottleneck), charges registration costs, and tracks how
many QPs are active — reproducing the MT23108 QP-context-cache effect the
paper blames for the 16-server degradation in Fig. 10 ("This is due to
the HCA design for multiple queue pair processing").
"""

from __future__ import annotations

from collections.abc import Callable

from ..net.fabrics import DEREGISTRATION, REGISTRATION, IBParams, IB_DEFAULT
from ..net.link import Fabric, Port
from ..simulator import Simulator, StatsRegistry
from .cq import CompletionQueue
from .mr import AccessFlags, MemoryRegion, ProtectionDomain
from .qp import QueuePair

__all__ = ["HCA"]


class HCA:
    """Verbs provider for one node."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        node_name: str,
        params: IBParams = IB_DEFAULT,
        stats: StatsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.node_name = node_name
        self.params = params
        self.stats = stats if stats is not None else StatsRegistry()
        self.port: Port = fabric.port(node_name)
        self.active_qps = 0
        #: optional hook invoked when an incoming RDMA write lands:
        #: ``sink(remote_addr, nbytes, payload)``; wired up by backing
        #: stores that want to observe delivered data.
        self.memory_sink: Callable[[int, int, object], None] | None = None

    # -- object factories ---------------------------------------------------

    def alloc_pd(self) -> ProtectionDomain:
        return ProtectionDomain(self.node_name)

    def create_cq(self, name: str = "") -> CompletionQueue:
        return CompletionQueue(
            self.sim,
            name or f"{self.node_name}.cq",
            event_notify_cost=self.params.event_notify_cost,
        )

    def create_qp(
        self,
        pd: ProtectionDomain,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        max_recv_wr: int = 256,
    ) -> QueuePair:
        qp = QueuePair(self, pd, send_cq, recv_cq, max_recv_wr=max_recv_wr)
        self.active_qps += 1
        return qp

    def qp_penalty(self) -> float:
        """Extra per-WQE cost from QP-context cache pressure (Fig. 10)."""
        return self.params.qp_penalty(self.active_qps)

    # -- memory registration (blocking: costs simulated time) ----------------

    def register_mr(
        self, pd: ProtectionDomain, length: int, access: int = AccessFlags.ALL,
        req_id: int | None = None,
    ):
        """Register ``length`` bytes; generator — use ``yield from``.

        Returns the new :class:`MemoryRegion`.  Charges the Fig. 3
        registration cost in the caller's (process) context, since
        registration is a synchronous syscall.  ``req_id`` marks a
        request-path registration (register-on-fly); without it the
        span is categorized ``reg.setup`` (pool/staging registration at
        connect time) so setup work stays out of the per-request blame.
        """
        cost = REGISTRATION.cost(length)
        t0 = self.sim.now
        yield self.sim.timeout(cost)
        addr = pd.allocate_va(length)
        mr = pd.register(addr, length, access)
        self.stats.counter("ib.registrations").add(length)
        self.stats.tally("ib.registration_usec").record(cost)
        trace = self.sim.trace
        if trace.enabled:
            ident = {} if req_id is None else {"req_id": req_id}
            trace.complete(
                self.node_name, "hca", "register_mr",
                "reg" if req_id is not None else "reg.setup",
                t0, self.sim.now, nbytes=length, **ident,
            )
        return mr

    def deregister_mr(self, pd: ProtectionDomain, mr: MemoryRegion,
                      req_id: int | None = None):
        """Deregister; generator — use ``yield from``."""
        cost = DEREGISTRATION.cost(mr.length)
        t0 = self.sim.now
        yield self.sim.timeout(cost)
        pd.deregister(mr)
        self.stats.counter("ib.deregistrations").add(mr.length)
        trace = self.sim.trace
        if trace.enabled:
            ident = {} if req_id is None else {"req_id": req_id}
            trace.complete(
                self.node_name, "hca", "deregister_mr",
                "reg" if req_id is not None else "reg.setup",
                t0, self.sim.now, nbytes=mr.length, **ident,
            )

    def __repr__(self) -> str:
        return f"<HCA {self.node_name} qps={self.active_qps}>"
