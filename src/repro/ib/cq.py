"""Completion queues with solicited-event notification.

HPBD's receiver thread does not poll: it arms an event handler on the
receive CQ (``EVAPI_set_comp_eventh`` in VAPI) and sleeps; the server
sets the *solicited* bit on its reply sends so the client HCA fires the
handler, which wakes the thread.  The thread then drains every available
CQE in one burst before sleeping again — "the overhead of repetitive
event triggering for clustered replies is avoided" (§4.2.3).

That burst semantics is exactly what :class:`CompletionQueue` models:

* :meth:`push` appends a CQE; if it is solicited and notification is
  armed, the handler wakeup fires ``event_notify_cost`` later and the
  arm is consumed (one event per arm, as on real hardware);
* consumers :meth:`poll` (non-blocking, drains in order) and re-arm with
  :meth:`request_notify` before sleeping — the classic "arm, drain once
  more, then sleep" race-free sequence is exercised in the unit tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..simulator import Simulator, WaitQueue

__all__ = ["CQE", "Opcode", "WCStatus", "CompletionQueue"]


class Opcode:
    """Work-completion opcodes (subset of the verbs set)."""

    SEND = "send"
    RECV = "recv"
    RDMA_WRITE = "rdma_write"
    RDMA_READ = "rdma_read"


class WCStatus:
    SUCCESS = "success"
    ERROR = "error"


@dataclass
class CQE:
    """One work completion."""

    opcode: str
    wr_id: int
    qp_num: int
    status: str = WCStatus.SUCCESS
    byte_len: int = 0
    payload: Any = None  # delivered message for RECV completions
    solicited: bool = False
    timestamp: float = field(default=0.0)


class CompletionQueue:
    """An ordered queue of CQEs shared by any number of QPs."""

    def __init__(
        self, sim: Simulator, name: str, event_notify_cost: float = 0.0
    ) -> None:
        self.sim = sim
        self.name = name
        self.event_notify_cost = event_notify_cost
        self._cqes: deque[CQE] = deque()
        #: latched wait queue: an event arriving while nobody waits is
        #: remembered, so the consumer's next wait returns immediately.
        self.notify = WaitQueue(sim, name=f"{name}.notify", latch=True)
        self._armed = False
        self._armed_solicited_only = False
        self.total_cqes = 0
        self.events_fired = 0

    def __len__(self) -> int:
        return len(self._cqes)

    # -- producer side ---------------------------------------------------

    def push(self, cqe: CQE) -> None:
        cqe.timestamp = self.sim.now
        self._cqes.append(cqe)
        self.total_cqes += 1
        fires = (
            not self._armed_solicited_only
            or cqe.solicited
            or cqe.status != WCStatus.SUCCESS
        )
        if self._armed and fires:
            # One notification per arm; delivery costs an interrupt path.
            self._armed = False
            self.events_fired += 1
            if self.event_notify_cost > 0:
                self.sim.schedule_call(self.event_notify_cost, self.notify.wake_one)
            else:
                self.notify.wake_one()

    # -- consumer side ---------------------------------------------------

    def poll(self, max_entries: int | None = None) -> list[CQE]:
        """Drain up to ``max_entries`` CQEs (all, if None), oldest first."""
        if max_entries is None or max_entries >= len(self._cqes):
            out = list(self._cqes)
            self._cqes.clear()
            return out
        return [self._cqes.popleft() for _ in range(max_entries)]

    def poll_one(self) -> CQE | None:
        return self._cqes.popleft() if self._cqes else None

    def request_notify(self, solicited_only: bool = False) -> None:
        """Arm the next completion event (``ReqNotifyCQ``).

        With ``solicited_only`` (VAPI ``SOLIC_COMP``) only completions
        whose sender set the solicitation bit — or errors — fire the
        event; otherwise any completion does (``NEXT_COMP``).
        """
        self._armed = True
        self._armed_solicited_only = solicited_only

    def wait_event(self):
        """Event the consumer thread yields on to sleep until notified."""
        return self.notify.wait()
