"""Connection management: wiring queue pairs together.

The real HPBD exchanges QP numbers/LIDs over a TCP socket at device
initialization (§5: "A socket interface is created at the initialization
phase for queue pair information exchange").  Connection setup is off the
paging critical path, so we model it as a fixed-latency handshake.
"""

from __future__ import annotations

from ..simulator import SimulationError
from .cq import CompletionQueue
from .hca import HCA
from .mr import ProtectionDomain
from .qp import QueuePair

__all__ = ["connect", "ConnectionError_", "HANDSHAKE_USEC"]

#: Out-of-band (TCP) QP-info exchange: three-way handshake plus two
#: small messages on a ~100 µs RTT management network.
HANDSHAKE_USEC = 500.0


class ConnectionError_(SimulationError):
    """QP wiring violated (double connect, self-connect...)."""


def connect(
    a: QueuePair,
    b: QueuePair,
) -> None:
    """Transition two QPs to RTS, wired to each other (instantaneous)."""
    if a is b:
        raise ConnectionError_("cannot connect a QP to itself")
    if a.peer is not None or b.peer is not None:
        raise ConnectionError_("QP already connected")
    if a.hca is b.hca:
        raise ConnectionError_(
            "loopback QPs on one HCA not supported by this model"
        )
    a.peer = b
    b.peer = a


def connect_endpoints(
    hca_a: HCA,
    pd_a: ProtectionDomain,
    send_cq_a: CompletionQueue,
    recv_cq_a: CompletionQueue,
    hca_b: HCA,
    pd_b: ProtectionDomain,
    send_cq_b: CompletionQueue,
    recv_cq_b: CompletionQueue,
    max_recv_wr: int = 256,
):
    """Create and connect a QP pair; generator — use ``yield from``.

    Charges the out-of-band handshake latency, then returns
    ``(qp_a, qp_b)``.
    """
    sim = hca_a.sim
    yield sim.timeout(HANDSHAKE_USEC)
    qp_a = hca_a.create_qp(pd_a, send_cq_a, recv_cq_a, max_recv_wr=max_recv_wr)
    qp_b = hca_b.create_qp(pd_b, send_cq_b, recv_cq_b, max_recv_wr=max_recv_wr)
    connect(qp_a, qp_b)
    return qp_a, qp_b
