"""Reliable-connection queue pairs and work-request execution.

A :class:`QueuePair` is one endpoint of an RC connection.  Work requests
are posted non-blockingly (``post_send`` / ``post_recv``, as in verbs);
a per-QP worker process executes send-queue WQEs **in order** — RC
ordering — charging the calibrated costs from :class:`~repro.net.fabrics.
IBParams` and occupying the HCA ports for serialization.

Semantics modelled:

* **SEND/RECV** (channel): consumes a pre-posted receive at the peer.  If
  the peer has none, the simulation raises :class:`ReceiverNotReady` —
  on hardware this is an RNR NAK storm; in HPBD it means the credit
  water-mark logic is broken, so we fail loudly instead of retrying.
* **RDMA WRITE / READ** (memory): validated against the peer's
  registered regions via rkey; no peer CPU or CQE involvement — the
  property the paper exploits for server-initiated page transfer.
* The *solicited* bit on a send propagates into the receiver's CQE and
  is what triggers the client's event handler (§5).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..simulator import Event, SimulationError, Store
from .cq import CQE, CompletionQueue, Opcode
from .mr import ProtectionDomain

__all__ = [
    "SendWR",
    "RecvWR",
    "RDMAWriteWR",
    "RDMAReadWR",
    "QueuePair",
    "ReceiverNotReady",
    "QPError",
]

_wr_ids = itertools.count(1)
_qp_nums = itertools.count(1)


class QPError(SimulationError):
    """Work-request or connection-state violation."""


class ReceiverNotReady(QPError):
    """SEND arrived with no pre-posted receive (would be an RNR NAK)."""


@dataclass
class SendWR:
    """Channel-semantics send carrying an opaque ``payload``."""

    nbytes: int
    payload: Any = None
    signaled: bool = True
    solicited: bool = False
    #: block-request identity propagated into the wire spans (critpath)
    req_id: int | None = None
    wr_id: int = field(default_factory=lambda: next(_wr_ids))


@dataclass
class RecvWR:
    """A pre-posted receive buffer descriptor."""

    capacity: int
    wr_id: int = field(default_factory=lambda: next(_wr_ids))


@dataclass
class RDMAWriteWR:
    """One-sided write of ``nbytes`` into ``(remote_addr, rkey)``."""

    nbytes: int
    remote_addr: int
    rkey: int
    payload: Any = None  # what lands in the remote buffer (bookkeeping)
    signaled: bool = True
    req_id: int | None = None
    wr_id: int = field(default_factory=lambda: next(_wr_ids))


@dataclass
class RDMAReadWR:
    """One-sided read of ``nbytes`` from ``(remote_addr, rkey)``."""

    nbytes: int
    remote_addr: int
    rkey: int
    signaled: bool = True
    req_id: int | None = None
    wr_id: int = field(default_factory=lambda: next(_wr_ids))


class QueuePair:
    """One endpoint of an RC connection.  Create via ``HCA.create_qp`` and
    connect with :func:`repro.ib.cm.connect`."""

    def __init__(
        self,
        hca: "Any",  # repro.ib.hca.HCA (circular import avoided)
        pd: ProtectionDomain,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        max_recv_wr: int = 256,
    ) -> None:
        self.hca = hca
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.qp_num = next(_qp_nums)
        self.max_recv_wr = max_recv_wr
        self.peer: QueuePair | None = None
        self._recv_queue: deque[RecvWR] = deque()
        self._sq: Store = Store(hca.sim, name=f"qp{self.qp_num}.sq")
        self._worker = hca.sim.spawn(self._send_worker(), name=f"qp{self.qp_num}")
        # statistics
        self.sends = 0
        self.rdma_writes = 0
        self.rdma_reads = 0
        self.bytes_sent = 0

    # -- connection state -------------------------------------------------

    @property
    def connected(self) -> bool:
        return self.peer is not None

    def _require_connected(self) -> "QueuePair":
        if self.peer is None:
            raise QPError(f"QP {self.qp_num} not connected")
        return self.peer

    # -- posting (non-blocking, like the verbs API) ------------------------

    def post_recv(self, wr: RecvWR) -> None:
        if len(self._recv_queue) >= self.max_recv_wr:
            raise QPError(
                f"QP {self.qp_num}: receive queue overflow "
                f"(> {self.max_recv_wr} posted)"
            )
        self._recv_queue.append(wr)

    @property
    def posted_recvs(self) -> int:
        return len(self._recv_queue)

    def post_send(self, wr: SendWR | RDMAWriteWR | RDMAReadWR) -> Event:
        """Queue a work request; returns an event firing at completion.

        The returned event is a convenience for driver code that wants to
        block on a specific WR (the CQE is still generated if
        ``wr.signaled``).
        """
        self._require_connected()
        done = Event(self.hca.sim, name=f"wr{wr.wr_id}")
        self._sq.put((wr, done))
        return done

    # -- execution ----------------------------------------------------------

    def _send_worker(self):
        sim = self.hca.sim
        params = self.hca.params
        while True:
            wr, done = yield self._sq.get()
            # QP-context cache pressure hits whichever HCA of the pair
            # juggles more connections (Fig. 10: the client's, with one
            # QP per memory server).
            peer = self.peer
            penalty = self.hca.qp_penalty()
            if peer is not None:
                penalty = max(penalty, peer.hca.qp_penalty())
            post_cost = params.wqe_post_cost + penalty
            if post_cost > 0:
                yield sim.timeout(post_cost)
            if isinstance(wr, SendWR):
                yield from self._do_send(wr)
                self.sends += 1
            elif isinstance(wr, RDMAWriteWR):
                yield from self._do_rdma_write(wr)
                self.rdma_writes += 1
            elif isinstance(wr, RDMAReadWR):
                yield from self._do_rdma_read(wr)
                self.rdma_reads += 1
            else:
                raise QPError(f"unknown work request {wr!r}")
            self.bytes_sent += wr.nbytes
            if wr.signaled:
                self.send_cq.push(
                    CQE(
                        opcode={
                            SendWR: Opcode.SEND,
                            RDMAWriteWR: Opcode.RDMA_WRITE,
                            RDMAReadWR: Opcode.RDMA_READ,
                        }[type(wr)],
                        wr_id=wr.wr_id,
                        qp_num=self.qp_num,
                        byte_len=wr.nbytes,
                    )
                )
            done.succeed(wr)

    def _do_send(self, wr: SendWR):
        peer = self._require_connected()
        params = self.hca.params
        hook = self.hca.fabric.fault_hook
        if hook is not None:
            wr = hook(self, wr)
            if wr is None:
                # The message vanished on the wire: charge the one-way
                # latency but consume no peer receive and generate no
                # completion there — the sender cannot tell the
                # difference until its timeout fires.
                yield self.hca.sim.timeout(
                    params.rdma_write_latency + params.send_recv_extra
                )
                return
        if not peer._recv_queue:
            raise ReceiverNotReady(
                f"QP {self.qp_num} -> {peer.qp_num}: no posted receive "
                f"(flow-control violation)"
            )
        recv_wr = peer._recv_queue.popleft()
        if recv_wr.capacity < wr.nbytes:
            raise QPError(
                f"receive buffer too small: {recv_wr.capacity} < {wr.nbytes}"
            )
        yield self.hca.fabric.transfer(
            self.hca.port,
            peer.hca.port,
            wr.nbytes,
            params.byte_time,
            params.rdma_write_latency + params.send_recv_extra,
            tag="ib_send",
            req_id=wr.req_id,
        )
        peer.recv_cq.push(
            CQE(
                opcode=Opcode.RECV,
                wr_id=recv_wr.wr_id,
                qp_num=peer.qp_num,
                byte_len=wr.nbytes,
                payload=wr.payload,
                solicited=wr.solicited,
            )
        )

    def _do_rdma_write(self, wr: RDMAWriteWR):
        peer = self._require_connected()
        mr = peer.pd.resolve_rkey(wr.rkey)
        mr.check_remote(wr.remote_addr, wr.nbytes, write=True)
        params = self.hca.params
        yield self.hca.fabric.transfer(
            self.hca.port,
            peer.hca.port,
            wr.nbytes,
            params.byte_time,
            params.rdma_write_latency,
            tag="rdma_write",
            req_id=wr.req_id,
        )
        # Deliver payload into the peer's simulated memory (bookkeeping
        # for tests/backing stores that want to observe the data).
        sink = getattr(peer.hca, "memory_sink", None)
        if sink is not None and wr.payload is not None:
            sink(wr.remote_addr, wr.nbytes, wr.payload)

    def _do_rdma_read(self, wr: RDMAReadWR):
        peer = self._require_connected()
        mr = peer.pd.resolve_rkey(wr.rkey)
        mr.check_remote(wr.remote_addr, wr.nbytes, write=False)
        params = self.hca.params
        # Read request travels first (extra latency), then data streams
        # back peer -> us, occupying the peer tx and our rx.
        yield self.hca.sim.timeout(
            params.rdma_write_latency + params.rdma_read_extra
        )
        yield self.hca.fabric.transfer(
            peer.hca.port,
            self.hca.port,
            wr.nbytes,
            params.byte_time,
            0.0,
            tag="rdma_read",
            req_id=wr.req_id,
        )
