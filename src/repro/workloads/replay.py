"""Replay workload: drive the VM from a recorded page-access trace.

Lets users bring real application traces (e.g. from ``perf mem``,
Valgrind's lackey, or a pin tool) to the simulated memory hierarchy.
The trace format is line-oriented text::

    # comment
    seq  <start_page> <end_page> <r|w> <compute_usec>
    rand <page,page,...>          <r|w> <compute_usec>
    cpu  <usec>

Pages are 4 KiB indices into one anonymous region.  Deterministic and
order-preserving by construction.
"""

from __future__ import annotations

import io
from collections.abc import Iterable
from pathlib import Path

import numpy as np

from .base import Workload
from .ops import Compute, RandomTouch, SeqTouch, TraceOp

__all__ = ["ReplayWorkload", "parse_trace", "TraceFormatError"]


class TraceFormatError(ValueError):
    """A malformed trace line (message includes the line number)."""


def parse_trace(text: str) -> list[TraceOp]:
    """Parse the trace format into ops (raises on malformed lines)."""
    ops: list[TraceOp] = []
    for lineno, raw in enumerate(io.StringIO(text), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        kind = fields[0]
        try:
            if kind == "seq":
                start, end, mode, usec = fields[1:5]
                ops.append(
                    SeqTouch(
                        start=int(start),
                        stop=int(end),
                        write=_mode(mode, lineno),
                        compute_usec=float(usec),
                    )
                )
            elif kind == "rand":
                pages, mode, usec = fields[1:4]
                arr = np.array([int(p) for p in pages.split(",")], dtype=np.int64)
                ops.append(
                    RandomTouch(
                        pages=arr,
                        write=_mode(mode, lineno),
                        compute_usec=float(usec),
                    )
                )
            elif kind == "cpu":
                ops.append(Compute(usec=float(fields[1])))
            else:
                raise TraceFormatError(
                    f"line {lineno}: unknown op {kind!r}"
                )
        except TraceFormatError:
            raise
        except (ValueError, IndexError) as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
    if not ops:
        raise TraceFormatError("trace contains no operations")
    return ops


def _mode(token: str, lineno: int) -> bool:
    if token == "w":
        return True
    if token == "r":
        return False
    raise TraceFormatError(f"line {lineno}: mode must be r or w, got {token!r}")


class ReplayWorkload(Workload):
    """A workload backed by a parsed trace."""

    name = "replay"

    def __init__(self, ops: list[TraceOp], npages: int | None = None) -> None:
        if not ops:
            raise ValueError("empty trace")
        self._ops = list(ops)
        max_page = 0
        for op in self._ops:
            if isinstance(op, SeqTouch):
                max_page = max(max_page, op.stop)
            elif isinstance(op, RandomTouch):
                max_page = max(max_page, int(op.pages.max()) + 1)
        if npages is None:
            npages = max_page
        elif npages < max_page:
            raise ValueError(
                f"trace touches page {max_page - 1}, region is {npages} pages"
            )
        if npages < 1:
            raise ValueError("trace touches no pages")
        self._npages = npages

    @classmethod
    def from_text(cls, text: str, npages: int | None = None) -> "ReplayWorkload":
        return cls(parse_trace(text), npages=npages)

    @classmethod
    def from_file(
        cls, path: str | Path, npages: int | None = None
    ) -> "ReplayWorkload":
        return cls.from_text(Path(path).read_text(), npages=npages)

    @property
    def npages(self) -> int:
        return self._npages

    def ops(self) -> Iterable[TraceOp]:
        return iter(self._ops)
