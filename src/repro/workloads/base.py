"""Workload base class and the trace executor.

``execute`` is the bridge between a workload's op stream and the VM:
it walks each touch op in chunks, letting faults (and therefore swap
I/O) interleave with the op's pro-rata compute — the same pipelining a
real application gets from kswapd running ahead of it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable

import numpy as np

from ..kernel.node import Node
from ..kernel.vmm import AddressSpace
from .ops import Compute, RandomTouch, SeqTouch, TraceOp

__all__ = ["Workload", "execute", "TOUCH_CHUNK_PAGES"]

#: Pages per residency-check chunk.  Small enough that compute and swap
#: I/O interleave (256 KiB granularity), large enough that the Python
#: event loop stays off the per-page path.
TOUCH_CHUNK_PAGES = 64


class Workload(ABC):
    """A deterministic page-level trace over one address space."""

    #: short identifier used in result tables
    name: str = "workload"

    @property
    @abstractmethod
    def npages(self) -> int:
        """Size of the address space this workload needs."""

    @abstractmethod
    def ops(self) -> Iterable[TraceOp]:
        """The operation stream (must be deterministic per instance)."""

    def total_compute_usec(self) -> float:
        """Pure-CPU lower bound: the in-memory execution time floor."""
        return sum(
            op.usec if isinstance(op, Compute) else op.compute_usec
            for op in self.ops()
        )

    def reseed(self, seed: int) -> "Workload":
        """A same-shaped workload regenerated from ``seed``.

        Randomized workloads pre-generate their op trace in
        ``__init__``, so mutating ``.seed`` after construction is a
        silent no-op — campaign replication across seeds must go
        through this hook, which returns a *new* instance.  The default
        covers deterministic workloads (no randomness): reseeding is
        the identity.
        """
        return self


def execute(workload: Workload, node: Node, aspace: AddressSpace):
    """Run a workload against a node's VM; generator (spawn as process).

    Returns the elapsed simulated microseconds.
    """
    if aspace.npages < workload.npages:
        raise ValueError(
            f"{workload.name}: needs {workload.npages} pages, address "
            f"space has {aspace.npages}"
        )
    sim = node.sim
    vmm = node.vmm
    cpus = node.cpus
    t0 = sim.now
    for op in workload.ops():
        if isinstance(op, Compute):
            yield from cpus.run(op.usec)
        elif isinstance(op, SeqTouch):
            per_page = op.compute_usec / op.npages
            start = op.start
            while start < op.stop:
                stop = min(start + TOUCH_CHUNK_PAGES, op.stop)
                yield from vmm.touch_run(aspace, start, stop, op.write)
                if per_page > 0:
                    yield from cpus.run(per_page * (stop - start))
                start = stop
        elif isinstance(op, RandomTouch):
            pages = np.asarray(op.pages, dtype=np.int64)
            per_page = op.compute_usec / len(pages)
            for lo in range(0, len(pages), TOUCH_CHUNK_PAGES):
                chunk = pages[lo : lo + TOUCH_CHUNK_PAGES]
                yield from vmm.touch_pages(aspace, chunk, op.write)
                if per_page > 0:
                    yield from cpus.run(per_page * len(chunk))
        else:  # pragma: no cover - TraceOp is closed
            raise TypeError(f"unknown trace op {op!r}")
    return sim.now - t0
