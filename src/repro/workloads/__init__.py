"""The paper's test programs as page-level access traces (§6.1)."""

from .barnes import BarnesWorkload
from .base import TOUCH_CHUNK_PAGES, Workload, execute
from .ops import Compute, RandomTouch, SeqTouch, TraceOp
from .quicksort import QuicksortWorkload
from .replay import ReplayWorkload, TraceFormatError, parse_trace
from .testswap import TestswapWorkload

__all__ = [
    "Workload",
    "execute",
    "TOUCH_CHUNK_PAGES",
    "TestswapWorkload",
    "QuicksortWorkload",
    "ReplayWorkload",
    "parse_trace",
    "TraceFormatError",
    "BarnesWorkload",
    "SeqTouch",
    "RandomTouch",
    "Compute",
    "TraceOp",
]
