"""testswap: the paper's microbenchmark (§6.1).

"allocates a 1GB array and sequentially write integers into this array"
— a single sequential store pass.  Under memory pressure this produces a
pure page-out stream: first-touch minor faults plus kswapd write-back,
no swap-ins.  The paper measures 5.8 s in local memory, which calibrates
the per-page store cost (a 2.66 GHz Xeon filling a 4 KiB page with
integers plus the first-touch fault).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..units import GiB, PAGE_SIZE, bytes_to_pages
from .base import Workload
from .ops import SeqTouch, TraceOp

__all__ = ["TestswapWorkload"]

#: Paper Fig. 5: in-memory execution time of the 1 GiB testswap run.
PAPER_LOCAL_SEC = 5.8


class TestswapWorkload(Workload):
    """Sequential integer-store pass over ``size_bytes``."""

    name = "testswap"
    __test__ = False  # not a pytest class despite the name

    def __init__(
        self,
        size_bytes: int = GiB,
        compute_usec_per_page: float | None = None,
    ) -> None:
        if size_bytes < PAGE_SIZE:
            raise ValueError(f"array too small: {size_bytes}")
        self._npages = bytes_to_pages(size_bytes)
        if compute_usec_per_page is None:
            # Calibrate so the full-size in-memory run hits 5.8 s:
            # total = npages * (store + fault overhead); the first-touch
            # fault is charged by the VM, so subtract its default cost.
            from ..kernel.params import DEFAULT_VM_PARAMS

            full_pages = bytes_to_pages(GiB)
            compute_usec_per_page = (
                PAPER_LOCAL_SEC * 1e6 / full_pages
                - DEFAULT_VM_PARAMS.fault_overhead
            )
        self.compute_usec_per_page = compute_usec_per_page

    @property
    def npages(self) -> int:
        return self._npages

    def ops(self) -> Iterable[TraceOp]:
        yield SeqTouch(
            start=0,
            stop=self._npages,
            write=True,
            compute_usec=self.compute_usec_per_page * self._npages,
        )
