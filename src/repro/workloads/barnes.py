"""Barnes (SPLASH-2): N-body simulation via the Barnes-Hut method (§6.1).

"It implements the Barnes-Hut method to simulate the interaction of a
system of bodies.  We simulate the interaction between 2097152 bodies.
For this configuration, the memory usage of this application
incrementally increases with a largest size of 516MB observed."

Trace structure per timestep (mirroring the SPLASH-2 code):

1. **tree build** — sequential read of the body array interleaved with
   writes into the (growing) cell region; cell placement is
   locality-biased random (new cells cluster near recently used ones);
2. **force computation** — per body-chunk: read bodies sequentially,
   traverse the tree: the top of the tree is touched by everyone (hot),
   deeper cells with decreasing probability;
3. **update** — sequential write sweep over the bodies.

The cell region grows each timestep so total usage ramps up to the
observed 516 MiB.  With 512 MiB of RAM the overflow is small and access
is partly random — swapping is light and read-ahead less effective,
matching the paper's "the improvement is less evident" for Fig. 8.

The paper's Fig. 8 y-values are not legible in the text, so the
in-memory target time is an assumption (documented in EXPERIMENTS.md);
only the cross-device *ratios* are treated as reproduction targets.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..units import MiB, bytes_to_pages
from .base import Workload
from .ops import RandomTouch, SeqTouch, TraceOp

__all__ = ["BarnesWorkload"]

#: SPLASH-2 body record (mass, pos, vel, acc, phi, pointers...) ≈ 120 B.
BODY_BYTES = 120
#: Assumed in-memory run time for 2,097,152 bodies (Fig. 8's axis is not
#: legible in the source text; ratios are the reproduction target).
ASSUMED_LOCAL_SEC = 110.0
#: Peak memory the paper observed.
PEAK_BYTES = 516 * MiB


class BarnesWorkload(Workload):
    """Barnes-Hut trace with a growing working set."""

    name = "barnes"

    def __init__(
        self,
        nbodies: int = 2_097_152,
        timesteps: int = 4,
        seed: int = 19950622,
        target_inmem_sec: float | None = None,
        peak_bytes: int | None = None,
    ) -> None:
        if nbodies < 4096:
            raise ValueError(f"too few bodies: {nbodies}")
        if timesteps < 1:
            raise ValueError("need at least one timestep")
        self.nbodies = nbodies
        self.timesteps = timesteps
        self.seed = seed
        scale = nbodies / 2_097_152
        if peak_bytes is None:
            peak_bytes = int(PEAK_BYTES * scale)
        if target_inmem_sec is None:
            target_inmem_sec = ASSUMED_LOCAL_SEC * scale
        self.body_pages = bytes_to_pages(nbodies * BODY_BYTES)
        self.cell_pages_max = max(
            64, bytes_to_pages(peak_bytes) - self.body_pages
        )
        self._npages = self.body_pages + self.cell_pages_max
        # Compute budget split across phases (force dominates in SPLASH-2:
        # ~85 % force, ~10 % tree build, ~5 % update).
        per_step = target_inmem_sec * 1e6 / timesteps
        self._build_usec = 0.10 * per_step
        self._force_usec = 0.85 * per_step
        self._update_usec = 0.05 * per_step
        self._trace = self._generate()

    # -- trace ------------------------------------------------------------

    def _generate(self) -> list[TraceOp]:
        rng = np.random.default_rng(self.seed)
        ops: list[TraceOp] = []
        cell_base = self.body_pages
        for step in range(self.timesteps):
            # Working set ramps up: cells used this step.
            frac = (step + 1) / self.timesteps
            cells_now = max(64, int(self.cell_pages_max * frac))
            hot = max(16, cells_now // 10)  # top-of-tree pages
            # 1. tree build: bodies read, then the tree is rebuilt from
            # scratch — every active cell is written (SPLASH-2 rebuilds
            # the octree each timestep).
            ops.append(
                SeqTouch(
                    0, self.body_pages, write=False,
                    compute_usec=self._build_usec * 0.4,
                )
            )
            ops.append(
                SeqTouch(
                    cell_base, cell_base + cells_now, write=True,
                    compute_usec=self._build_usec * 0.6,
                )
            )
            # 2. force computation: chunked body reads + tree traversals.
            nchunks = 16
            bchunk = self.body_pages // nchunks
            per_chunk = self._force_usec / nchunks
            for c in range(nchunks):
                lo = c * bchunk
                hi = self.body_pages if c == nchunks - 1 else lo + bchunk
                ops.append(
                    SeqTouch(lo, hi, write=True, compute_usec=per_chunk * 0.3)
                )
                ntouch = max(32, cells_now // 8)
                cells = self._biased_pages(rng, cell_base, cells_now, hot, ntouch)
                ops.append(
                    RandomTouch(cells, write=False, compute_usec=per_chunk * 0.7)
                )
            # 3. update pass over bodies.
            ops.append(
                SeqTouch(
                    0, self.body_pages, write=True,
                    compute_usec=self._update_usec,
                )
            )
        return ops

    @staticmethod
    def _biased_pages(
        rng: np.random.Generator, base: int, extent: int, hot: int, n: int
    ) -> np.ndarray:
        """70 % of touches to the hot prefix, 30 % uniform over all."""
        n_hot = int(0.7 * n)
        hot_pages = rng.integers(0, hot, size=n_hot)
        cold_pages = rng.integers(0, extent, size=n - n_hot)
        return base + np.unique(np.concatenate([hot_pages, cold_pages]))

    # -- Workload API ------------------------------------------------------

    @property
    def npages(self) -> int:
        return self._npages

    def ops(self) -> Iterable[TraceOp]:
        return iter(self._trace)

    def reseed(self, seed: int) -> "BarnesWorkload":
        """Regenerate the body distribution from a new seed (same size
        and compute calibration); the trace is built in ``__init__``,
        so this returns a fresh instance."""
        return BarnesWorkload(
            nbodies=self.nbodies, timesteps=self.timesteps, seed=seed
        )
