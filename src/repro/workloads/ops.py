"""Trace operations: the vocabulary workloads speak to the VM.

A workload is a deterministic sequence of these ops over one address
space.  Compute attached to a touch op is charged *interleaved* with the
page touches (per chunk), so swap-out can overlap application compute
exactly as it does on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SeqTouch", "RandomTouch", "Compute", "TraceOp"]


@dataclass(frozen=True)
class SeqTouch:
    """Touch pages ``[start, stop)`` in ascending order.

    ``compute_usec`` is the CPU work performed while walking the run
    (charged pro-rata per chunk).  ``write`` marks the pages dirty.
    """

    start: int
    stop: int
    write: bool
    compute_usec: float = 0.0

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ValueError(f"empty run [{self.start}, {self.stop})")
        if self.compute_usec < 0:
            raise ValueError("negative compute")

    @property
    def npages(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class RandomTouch:
    """Touch an explicit page set (deduplicated, any order)."""

    pages: np.ndarray
    write: bool
    compute_usec: float = 0.0

    def __post_init__(self) -> None:
        if len(self.pages) == 0:
            raise ValueError("empty page set")
        if self.compute_usec < 0:
            raise ValueError("negative compute")

    @property
    def npages(self) -> int:
        return len(self.pages)


@dataclass(frozen=True)
class Compute:
    """Pure CPU time with no memory traffic."""

    usec: float

    def __post_init__(self) -> None:
        if self.usec < 0:
            raise ValueError("negative compute")


TraceOp = SeqTouch | RandomTouch | Compute
